#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ispb::obs {

std::atomic<MetricsRegistry*> MetricsRegistry::g_installed{nullptr};

std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

/// Canonical series key: name{k1=v1,k2=v2} with labels sorted by key.
std::string canonical_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

}  // namespace

MetricsRegistry::Series& MetricsRegistry::series_locked(std::string_view name,
                                                        const Labels& labels,
                                                        MetricKind kind) {
  const std::string key = canonical_key(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.name = name;
    s.labels = labels;
    std::sort(s.labels.begin(), s.labels.end());
    s.kind = kind;
    it = series_.emplace(key, std::move(s)).first;
  } else if (it->second.kind != kind) {
    throw ContractError("metric '" + std::string(name) +
                        "' re-registered with a different kind");
  }
  return it->second;
}

void MetricsRegistry::add(std::string_view name, f64 delta,
                          const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  series_locked(name, labels, MetricKind::kCounter).value += delta;
}

void MetricsRegistry::set(std::string_view name, f64 value,
                          const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  series_locked(name, labels, MetricKind::kGauge).value = value;
}

void MetricsRegistry::observe(std::string_view name, f64 sample,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_locked(name, labels, MetricKind::kHistogram);
  if (!s.hist) s.hist.emplace();
  s.hist->record(sample);
}

f64 MetricsRegistry::value(std::string_view name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(canonical_key(name, labels));
  return it == series_.end() ? 0.0 : it->second.value;
}

std::optional<StreamingHistogram> MetricsRegistry::histogram(
    std::string_view name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(canonical_key(name, labels));
  if (it == series_.end() || !it->second.hist) return std::nullopt;
  return it->second.hist;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json arr = Json::array();
  for (const auto& [key, s] : series_) {
    (void)key;
    Json m = Json::object();
    m["name"] = s.name;
    m["kind"] = to_string(s.kind);
    if (!s.labels.empty()) {
      Json labels = Json::object();
      for (const auto& [k, v] : s.labels) labels[k] = v;
      m["labels"] = std::move(labels);
    }
    if (s.kind == MetricKind::kHistogram) {
      // Merge the bounded-sketch summary fields into the series object.
      const Json h = s.hist ? s.hist->to_json()
                            : StreamingHistogram{}.to_json();
      for (const auto& [hk, hv] : h.members()) m[hk] = hv;
    } else {
      m["value"] = s.value;
    }
    arr.push_back(std::move(m));
  }
  return arr;
}

}  // namespace ispb::obs

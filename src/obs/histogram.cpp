#include "obs/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ispb::obs {

StreamingHistogram::StreamingHistogram(HistogramConfig config)
    : config_(config) {
  ISPB_EXPECTS(config_.min_value > 0.0);
  ISPB_EXPECTS(config_.max_value > config_.min_value);
  ISPB_EXPECTS(config_.rel_error > 0.0 && config_.rel_error < 1.0);
  const f64 growth = (1.0 + config_.rel_error) * (1.0 + config_.rel_error);
  inv_log_growth_ = 1.0 / std::log(growth);
  const f64 decades = std::log(config_.max_value / config_.min_value);
  const auto log_buckets =
      static_cast<std::size_t>(std::ceil(decades * inv_log_growth_));
  // [0] underflow, [1 .. log_buckets] log-spaced, [last] overflow.
  buckets_.assign(log_buckets + 2, 0);
}

std::size_t StreamingHistogram::bucket_index(f64 value) const {
  if (std::isnan(value) || value < config_.min_value) return 0;
  if (value >= config_.max_value) return buckets_.size() - 1;
  const f64 pos = std::log(value / config_.min_value) * inv_log_growth_;
  auto idx = static_cast<std::size_t>(pos) + 1;
  // Guard the fp boundary: log/exp rounding may land exactly on the edge.
  if (idx > buckets_.size() - 2) idx = buckets_.size() - 2;
  return idx;
}

f64 StreamingHistogram::bucket_value(std::size_t index) const {
  if (index == 0) return min_;                    // underflow: exact min
  if (index == buckets_.size() - 1) return max_;  // overflow: exact max
  const f64 growth = (1.0 + config_.rel_error) * (1.0 + config_.rel_error);
  const f64 lo =
      config_.min_value * std::pow(growth, static_cast<f64>(index - 1));
  // Geometric midpoint lo * sqrt(growth) = lo * (1 + rel_error): every value
  // in [lo, lo * growth) is within rel_error of it.
  return lo * (1.0 + config_.rel_error);
}

void StreamingHistogram::record(f64 value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (count_ == 1 || value > max_) max_ = value;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  if (!(config_ == other.config_)) {
    throw ContractError("StreamingHistogram::merge: mismatched configs");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  sum_ += other.sum_;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

std::optional<f64> StreamingHistogram::percentile(f64 p) const {
  ISPB_EXPECTS(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return std::nullopt;
  if (p == 0.0) return min_;
  if (p == 100.0) return max_;
  // Nearest rank: the k-th smallest sample with k = ceil(p/100 * n).
  const auto rank = static_cast<u64>(
      std::ceil(p / 100.0 * static_cast<f64>(count_)));
  u64 cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return bucket_value(i);
  }
  return max_;  // unreachable: cumulative == count_ >= rank by then
}

std::optional<f64> StreamingHistogram::min() const {
  return count_ == 0 ? std::nullopt : std::optional<f64>(min_);
}

std::optional<f64> StreamingHistogram::max() const {
  return count_ == 0 ? std::nullopt : std::optional<f64>(max_);
}

std::optional<f64> StreamingHistogram::mean() const {
  return count_ == 0 ? std::nullopt
                     : std::optional<f64>(sum_ / static_cast<f64>(count_));
}

void StreamingHistogram::reset() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Json StreamingHistogram::to_json() const {
  Json j = Json::object();
  j["count"] = count_;
  j["rel_error"] = config_.rel_error;
  if (count_ == 0) {
    // Absent, not 0.0: an empty histogram has no latency to report.
    j["min"] = nullptr;
    j["max"] = nullptr;
    j["mean"] = nullptr;
    j["p50"] = nullptr;
    j["p90"] = nullptr;
    j["p99"] = nullptr;
    return j;
  }
  j["sum"] = sum_;
  j["min"] = min_;
  j["max"] = max_;
  j["mean"] = *mean();
  j["p50"] = *percentile(50.0);
  j["p90"] = *percentile(90.0);
  j["p99"] = *percentile(99.0);
  return j;
}

}  // namespace ispb::obs

// Structured tracing: RAII scoped spans with per-thread sinks and
// request-scoped context propagation.
//
// The compile -> optimize -> regalloc -> codegen -> simulate pipeline is
// instrumented with ScopedSpans. When no session is active a span costs one
// relaxed atomic load and nothing else (no strings, no clock reads, no
// allocation) — the simulator's timing results are unaffected by the
// instrumentation being compiled in. When a session is active each thread
// appends events to its own buffer (the simulator's block loop runs on the
// shared thread pool; per-thread sinks avoid any contention on the hot
// path); TraceSession::stop() merges the buffers and orders events
// deterministically (by start timestamp, ties kept in buffer order).
//
// Request scoping: every span carries (request_id, span_id,
// parent_span_id). A TraceContext names the request a thread is currently
// working for and the span new child spans should hang off; ScopedSpan
// maintains it automatically for same-thread nesting, and thread handoffs
// (server worker -> executor pool task -> watchdog exec thread) carry it
// explicitly: snapshot TraceContext::current() before the hop, install it
// with TraceContext::Scope inside. The result is one tree per request in
// the export, regardless of which threads ran its stages, and
// request_breakdown() extracts the per-request critical path (queue wait
// vs compile vs simulated execution vs retry backoff).
//
// The merged events export as Chrome trace-event JSON ("traceEvents" array
// of complete "X" events) loadable in Perfetto or chrome://tracing; the
// request/span ids ride in each event's args.
//
// Contract: start/stop must not race with in-flight spans. Every user in
// this repo starts a session before driving the pipeline and stops it after
// the launches return (the pool is idle between launches), which satisfies
// the contract by construction.
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ispb::obs {

/// One completed span: a named duration with optional structured arguments.
struct TraceEvent {
  std::string name;
  std::string cat;  ///< coarse grouping: "compile", "ir", "sim", ...
  f64 ts_us = 0.0;  ///< start, microseconds since session start
  f64 dur_us = 0.0;
  u32 tid = 0;      ///< sink registration index (stable within a session)
  u64 request_id = 0;       ///< 0 = not request-scoped
  u64 span_id = 0;          ///< unique per span within a session
  u64 parent_span_id = 0;   ///< 0 = root of its request (or unparented)
  std::vector<std::pair<std::string, Json>> args;
};

namespace detail {
extern std::atomic<bool> g_trace_active;
void record(TraceEvent&& ev, u64 start_ns, u64 end_ns);
[[nodiscard]] u64 now_ns();
[[nodiscard]] u64 alloc_span_id();
}  // namespace detail

/// The request a thread is currently tracing for: new spans become children
/// of `span_id` and inherit `request_id`. Thread-local; default {0, 0}.
struct TraceContext {
  u64 request_id = 0;
  u64 span_id = 0;  ///< parent for spans opened under this context

  /// This thread's current context (cheap: one thread-local read).
  [[nodiscard]] static TraceContext current();

  /// RAII install/restore, for carrying a context across a thread handoff:
  /// snapshot current() on the submitting side, Scope it inside the task.
  class Scope {
   public:
    explicit Scope(TraceContext ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    u64 prev_request_ = 0;  // TraceContext is incomplete here; store fields
    u64 prev_span_ = 0;
  };
};

/// Process-wide tracing session. At most one is active at a time.
class TraceSession {
 public:
  /// Starts collecting; resets any events from a previous session.
  static void start();

  /// Stops collecting and returns all events merged across threads, sorted
  /// by start timestamp (stable: same-timestamp events keep per-thread
  /// emission order). Idempotent: without a matching start(), returns empty.
  [[nodiscard]] static std::vector<TraceEvent> stop();

  /// True while a session is collecting. The null-sink fast path: every
  /// instrumentation site checks this single relaxed atomic first.
  [[nodiscard]] static bool active() {
    return detail::g_trace_active.load(std::memory_order_relaxed);
  }

  /// Fresh ids for callers that stitch spans manually (the server allocates
  /// a request id + root span id at submit and records the root span at
  /// finalize, long after the submitting thread moved on). Never 0.
  [[nodiscard]] static u64 next_request_id();
  [[nodiscard]] static u64 next_span_id() { return detail::alloc_span_id(); }

  /// Steady-clock nanoseconds, the session time base.
  [[nodiscard]] static u64 now_ns() { return detail::now_ns(); }
};

/// Records a completed span with explicit timestamps — for durations whose
/// endpoints live on different threads (queue wait: submit -> dequeue) or
/// that outlive the scope that measured them (the per-request root span).
/// `span_id` 0 allocates a fresh id; returns the id used (0 when no session
/// is active, in which case nothing is recorded).
u64 record_span(std::string_view name, std::string_view cat, u64 start_ns,
                u64 end_ns, u64 request_id, u64 parent_span_id,
                u64 span_id = 0);

/// RAII span: measures construction-to-destruction and records one
/// TraceEvent into the current thread's sink. Inactive (when no session is
/// running) it does no work at all. Active, it inherits the thread's
/// TraceContext (request id + parent) and installs itself as the parent of
/// spans opened inside it on this thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "") {
    if (!TraceSession::active()) return;
    active_ = true;
    ev_.name = name;
    ev_.cat = cat;
    begin(ev_);
    start_ns_ = detail::now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!active_) return;
    const u64 end_ns = detail::now_ns();
    end();
    detail::record(std::move(ev_), start_ns_, end_ns);
  }

  /// Attaches a structured argument (shown in the trace viewer). No-op when
  /// the span is inactive, so callers may pass eagerly computed cheap
  /// values; guard expensive ones with `recording()`.
  void arg(std::string_view key, Json value) {
    if (active_) ev_.args.emplace_back(std::string(key), std::move(value));
  }

  [[nodiscard]] bool recording() const { return active_; }

 private:
  /// Fills ids from the thread's context and parents it on this span.
  void begin(TraceEvent& ev);
  /// Restores the thread's context to what it was at construction.
  void end();

  bool active_ = false;
  u64 start_ns_ = 0;
  u64 prev_parent_span_ = 0;  ///< context to restore at destruction
  TraceEvent ev_;
};

/// Exports events as a Chrome trace-event document:
/// {"traceEvents": [{"ph":"X","name",...}], "displayTimeUnit":"ms"}.
/// Request-scoped events carry args.req / args.span / args.parent so a
/// request's tree is recoverable in the viewer.
[[nodiscard]] Json chrome_trace_json(std::span<const TraceEvent> events);

/// Per-name duration summary of a set of spans (profiler report table).
struct SpanSummary {
  std::string name;
  i64 count = 0;
  f64 total_us = 0.0;
  f64 p50_us = 0.0;
  f64 p90_us = 0.0;
  f64 p99_us = 0.0;
};

/// Groups events by name and summarizes durations; sorted by descending
/// total time.
[[nodiscard]] std::vector<SpanSummary> summarize_spans(
    std::span<const TraceEvent> events);

// ---- request-tree extraction ------------------------------------------------

/// Where one request's wall time went, extracted from its span tree.
/// Categories are disjoint by construction (each sums only spans that never
/// nest inside another counted span): queue wait, kernel-cache compiles,
/// simulated launches, retry backoff. `other_us` is the root-span remainder.
struct RequestBreakdown {
  u64 request_id = 0;
  bool has_root = false;  ///< a root span (parent 0) was found
  f64 total_us = 0.0;     ///< root span duration
  f64 queue_us = 0.0;
  f64 compile_us = 0.0;
  f64 sim_us = 0.0;
  f64 retry_backoff_us = 0.0;
  f64 other_us = 0.0;
  i64 spans = 0;          ///< spans carrying this request id
  i64 unreachable = 0;    ///< spans whose parent chain never reaches a root

  [[nodiscard]] Json to_json() const;
};

/// Distinct nonzero request ids present in `events`, ascending.
[[nodiscard]] std::vector<u64> request_ids(std::span<const TraceEvent> events);

/// Critical-path breakdown of one request's spans. `unreachable` counts
/// spans that do not link into the request's root tree — 0 means the
/// propagation invariant holds (every span reachable from the root).
[[nodiscard]] RequestBreakdown request_breakdown(
    std::span<const TraceEvent> events, u64 request_id);

}  // namespace ispb::obs

// Structured tracing: RAII scoped spans with per-thread sinks.
//
// The compile -> optimize -> regalloc -> codegen -> simulate pipeline is
// instrumented with ScopedSpans. When no session is active a span costs one
// relaxed atomic load and nothing else (no strings, no clock reads, no
// allocation) — the simulator's timing results are unaffected by the
// instrumentation being compiled in. When a session is active each thread
// appends events to its own buffer (the simulator's block loop runs on the
// shared thread pool; per-thread sinks avoid any contention on the hot
// path); TraceSession::stop() merges the buffers and orders events
// deterministically (by start timestamp, ties kept in buffer order).
//
// The merged events export as Chrome trace-event JSON ("traceEvents" array
// of complete "X" events) loadable in Perfetto or chrome://tracing.
//
// Contract: start/stop must not race with in-flight spans. Every user in
// this repo starts a session before driving the pipeline and stops it after
// the launches return (the pool is idle between launches), which satisfies
// the contract by construction.
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ispb::obs {

/// One completed span: a named duration with optional structured arguments.
struct TraceEvent {
  std::string name;
  std::string cat;  ///< coarse grouping: "compile", "ir", "sim", ...
  f64 ts_us = 0.0;  ///< start, microseconds since session start
  f64 dur_us = 0.0;
  u32 tid = 0;      ///< sink registration index (stable within a session)
  std::vector<std::pair<std::string, Json>> args;
};

namespace detail {
extern std::atomic<bool> g_trace_active;
void record(TraceEvent&& ev, u64 start_ns, u64 end_ns);
[[nodiscard]] u64 now_ns();
}  // namespace detail

/// Process-wide tracing session. At most one is active at a time.
class TraceSession {
 public:
  /// Starts collecting; resets any events from a previous session.
  static void start();

  /// Stops collecting and returns all events merged across threads, sorted
  /// by start timestamp (stable: same-timestamp events keep per-thread
  /// emission order). Idempotent: without a matching start(), returns empty.
  [[nodiscard]] static std::vector<TraceEvent> stop();

  /// True while a session is collecting. The null-sink fast path: every
  /// instrumentation site checks this single relaxed atomic first.
  [[nodiscard]] static bool active() {
    return detail::g_trace_active.load(std::memory_order_relaxed);
  }
};

/// RAII span: measures construction-to-destruction and records one
/// TraceEvent into the current thread's sink. Inactive (when no session is
/// running) it does no work at all.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "") {
    if (!TraceSession::active()) return;
    active_ = true;
    ev_.name = name;
    ev_.cat = cat;
    start_ns_ = detail::now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!active_) return;
    detail::record(std::move(ev_), start_ns_, detail::now_ns());
  }

  /// Attaches a structured argument (shown in the trace viewer). No-op when
  /// the span is inactive, so callers may pass eagerly computed cheap
  /// values; guard expensive ones with `recording()`.
  void arg(std::string_view key, Json value) {
    if (active_) ev_.args.emplace_back(std::string(key), std::move(value));
  }

  [[nodiscard]] bool recording() const { return active_; }

 private:
  bool active_ = false;
  u64 start_ns_ = 0;
  TraceEvent ev_;
};

/// Exports events as a Chrome trace-event document:
/// {"traceEvents": [{"ph":"X","name",...}], "displayTimeUnit":"ms"}.
[[nodiscard]] Json chrome_trace_json(std::span<const TraceEvent> events);

/// Per-name duration summary of a set of spans (profiler report table).
struct SpanSummary {
  std::string name;
  i64 count = 0;
  f64 total_us = 0.0;
  f64 p50_us = 0.0;
  f64 p90_us = 0.0;
  f64 p99_us = 0.0;
};

/// Groups events by name and summarizes durations; sorted by descending
/// total time.
[[nodiscard]] std::vector<SpanSummary> summarize_spans(
    std::span<const TraceEvent> events);

}  // namespace ispb::obs

#include "obs/slo.hpp"

#include <chrono>

#include "common/error.hpp"

namespace ispb::obs {

u64 steady_now_ms() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string_view to_string(SloOutcome o) {
  switch (o) {
    case SloOutcome::kOk:
      return "ok";
    case SloOutcome::kError:
      return "error";
    case SloOutcome::kRejected:
      return "rejected";
    case SloOutcome::kDeadlineMiss:
      return "deadline_miss";
  }
  return "?";
}

Json SloSnapshot::to_json() const {
  Json j = Json::object();
  j["window_s"] = window_s;
  j["ok"] = ok;
  j["errors"] = errors;
  j["rejected"] = rejected;
  j["deadline_miss"] = deadline_miss;
  j["throughput_rps"] = throughput_rps;
  j["error_rate"] = error_rate;
  j["rejection_rate"] = rejection_rate;
  j["deadline_miss_rate"] = deadline_miss_rate;
  j["p50_ms"] = p50_ms ? Json(*p50_ms) : Json(nullptr);
  j["p90_ms"] = p90_ms ? Json(*p90_ms) : Json(nullptr);
  j["p99_ms"] = p99_ms ? Json(*p99_ms) : Json(nullptr);
  return j;
}

SloWindow::SloWindow(SloConfig config) : config_(config) {
  ISPB_EXPECTS(config_.slot_ms > 0);
  ISPB_EXPECTS(config_.slots > 0);
  slots_.reserve(config_.slots);
  for (std::size_t i = 0; i < config_.slots; ++i) {
    Slot s;
    s.latency = StreamingHistogram(config_.hist);
    slots_.push_back(std::move(s));
  }
}

SloWindow::Slot& SloWindow::slot_for_locked(u64 now_ms) {
  const u64 epoch = now_ms / config_.slot_ms;
  Slot& slot = slots_[epoch % config_.slots];
  if (!slot.live || slot.epoch != epoch) {
    // The ring wrapped (or this slot was never used): recycle in place.
    slot.epoch = epoch;
    slot.live = true;
    slot.ok = slot.errors = slot.rejected = slot.deadline_miss = 0;
    slot.latency.reset();
  }
  return slot;
}

void SloWindow::record(SloOutcome outcome, f64 latency_ms, u64 now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for_locked(now_ms);
  switch (outcome) {
    case SloOutcome::kOk:
      ++slot.ok;
      slot.latency.record(latency_ms);
      break;
    case SloOutcome::kError:
      ++slot.errors;
      break;
    case SloOutcome::kRejected:
      ++slot.rejected;
      break;
    case SloOutcome::kDeadlineMiss:
      ++slot.deadline_miss;
      break;
  }
}

SloSnapshot SloWindow::snapshot(u64 now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 now_epoch = now_ms / config_.slot_ms;
  // A slot is inside the window when its epoch is within `slots` of now.
  const u64 oldest =
      now_epoch >= config_.slots - 1 ? now_epoch - (config_.slots - 1) : 0;
  SloSnapshot snap;
  StreamingHistogram merged{config_.hist};
  u64 live_slots = 0;
  for (const Slot& slot : slots_) {
    if (!slot.live || slot.epoch < oldest || slot.epoch > now_epoch) continue;
    ++live_slots;
    snap.ok += slot.ok;
    snap.errors += slot.errors;
    snap.rejected += slot.rejected;
    snap.deadline_miss += slot.deadline_miss;
    merged.merge(slot.latency);
  }
  // Window span: count the current (possibly partial) slot as partial so a
  // 1-second-old server does not report a 60x inflated throughput.
  if (live_slots > 0) {
    const u64 full_slots = live_slots - 1;
    const u64 partial_ms = now_ms % config_.slot_ms;
    snap.window_s = (static_cast<f64>(full_slots * config_.slot_ms) +
                     static_cast<f64>(partial_ms)) *
                    1e-3;
    if (snap.window_s <= 0.0) {
      snap.window_s = static_cast<f64>(config_.slot_ms) * 1e-3;
    }
  }
  const u64 total = snap.total();
  if (snap.window_s > 0.0) {
    snap.throughput_rps = static_cast<f64>(snap.ok) / snap.window_s;
  }
  if (total > 0) {
    snap.error_rate = static_cast<f64>(snap.errors) / static_cast<f64>(total);
    snap.rejection_rate =
        static_cast<f64>(snap.rejected) / static_cast<f64>(total);
    snap.deadline_miss_rate =
        static_cast<f64>(snap.deadline_miss) / static_cast<f64>(total);
  }
  snap.p50_ms = merged.percentile(50.0);
  snap.p90_ms = merged.percentile(90.0);
  snap.p99_ms = merged.percentile(99.0);
  return snap;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  ISPB_EXPECTS(capacity_ > 0);
}

void FlightRecorder::note(std::string_view tag, Json payload, u64 now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frames_.size() == capacity_) {
    frames_.pop_front();
    ++dropped_;
  }
  Frame f;
  f.t_ms = now_ms;
  f.tag = tag;
  f.payload = std::move(payload);
  frames_.push_back(std::move(f));
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

Json FlightRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::object();
  doc["capacity"] = static_cast<i64>(capacity_);
  doc["dropped"] = dropped_;
  Json arr = Json::array();
  for (const Frame& f : frames_) {
    Json e = Json::object();
    e["t_ms"] = f.t_ms;
    e["tag"] = f.tag;
    e["data"] = f.payload;
    arr.push_back(std::move(e));
  }
  doc["frames"] = std::move(arr);
  return doc;
}

SloExporter::SloExporter(FlightRecorder& sink, std::function<Json()> sample,
                         u64 interval_ms, std::string tag)
    : sink_(sink),
      sample_(std::move(sample)),
      interval_ms_(interval_ms),
      tag_(std::move(tag)) {
  ISPB_EXPECTS(interval_ms_ > 0);
  ISPB_EXPECTS(sample_ != nullptr);
  thread_ = std::thread([this] { run(); });
}

SloExporter::~SloExporter() { stop(); }

void SloExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SloExporter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Even when stop() won the race and stopping_ is already set, fall
    // through to one final sample — the at-least-one-frame guarantee.
    const bool stopping =
        cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stopping_; });
    // Sample outside the exporter lock: the callback takes its own locks
    // (SloWindow, server stats) and must not hold ours while doing so.
    lock.unlock();
    sink_.note(tag_, sample_());
    if (stopping) return;
    lock.lock();
  }
}

}  // namespace ispb::obs

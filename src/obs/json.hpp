// Minimal JSON document model for the observability layer.
//
// The profiler report, the Chrome trace export and the bench --json output
// all need to emit machine-readable JSON, and the round-trip tests and CI
// validation need to read it back. This is a deliberately small tree model
// (no SAX, no allocator tuning): documents are assembled as values, dumped
// with deterministic formatting, and parsed strictly (trailing garbage and
// malformed escapes throw IoError). Object keys keep insertion order so
// emitted reports are stable across runs and easy to diff.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ispb::obs {

/// One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Json(f64 v) : kind_(Kind::kNumber), num_(v) {}  // NOLINT
  Json(i64 v) : kind_(Kind::kNumber), num_(static_cast<f64>(v)), is_int_(true) {}  // NOLINT
  Json(i32 v) : Json(static_cast<i64>(v)) {}      // NOLINT
  Json(u64 v) : Json(static_cast<i64>(v)) {}      // NOLINT
  Json(u32 v) : Json(static_cast<i64>(v)) {}      // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}             // NOLINT

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  // Typed accessors; throw ContractError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] f64 as_number() const;
  [[nodiscard]] i64 as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Object access: inserts a null member on first use (object/null only).
  Json& operator[](std::string_view key);
  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array append (array/null only).
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per level.
  void dump(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parser; throws IoError on malformed input (including trailing
  /// non-whitespace). Numbers parse as f64; integral values round-trip.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  f64 num_ = 0.0;
  bool is_int_ = false;  ///< emit without a decimal point
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ispb::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "common/stats.hpp"

namespace ispb::obs {

namespace detail {

std::atomic<bool> g_trace_active{false};

namespace {

struct ThreadBuf {
  u32 tid = 0;
  std::vector<TraceEvent> events;
};

struct SessionState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  u64 start_ns = 0;
};

SessionState& session() {
  static SessionState state;
  return state;
}

// Each session bumps the generation; thread-local buffer pointers from an
// earlier session are detected as stale and re-registered.
std::atomic<u64> g_generation{0};
thread_local ThreadBuf* t_buf = nullptr;
thread_local u64 t_gen = 0;

// Request/span ids are monotonic across the process lifetime (not reset per
// session) so stale ids from a previous session can never collide.
std::atomic<u64> g_next_span_id{1};
std::atomic<u64> g_next_request_id{1};

// The request/parent this thread is currently working under. Plain
// thread-locals: each thread only reads and writes its own.
thread_local u64 t_ctx_request = 0;
thread_local u64 t_ctx_span = 0;

ThreadBuf* this_thread_buf() {
  const u64 gen = g_generation.load(std::memory_order_acquire);
  if (t_buf != nullptr && t_gen == gen) return t_buf;
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_trace_active.load(std::memory_order_relaxed)) return nullptr;
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<u32>(s.bufs.size());
  t_buf = buf.get();
  t_gen = gen;
  s.bufs.push_back(std::move(buf));
  return t_buf;
}

}  // namespace

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record(TraceEvent&& ev, u64 start_ns, u64 end_ns) {
  if (!g_trace_active.load(std::memory_order_relaxed)) return;
  ThreadBuf* buf = this_thread_buf();
  if (buf == nullptr) return;  // session stopped while we were registering
  const u64 base = session().start_ns;
  ev.ts_us = static_cast<f64>(start_ns - base) * 1e-3;
  ev.dur_us = static_cast<f64>(end_ns - start_ns) * 1e-3;
  ev.tid = buf->tid;
  buf->events.push_back(std::move(ev));
}

u64 alloc_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

TraceContext TraceContext::current() {
  return {detail::t_ctx_request, detail::t_ctx_span};
}

TraceContext::Scope::Scope(TraceContext ctx)
    : prev_request_(detail::t_ctx_request), prev_span_(detail::t_ctx_span) {
  detail::t_ctx_request = ctx.request_id;
  detail::t_ctx_span = ctx.span_id;
}

TraceContext::Scope::~Scope() {
  detail::t_ctx_request = prev_request_;
  detail::t_ctx_span = prev_span_;
}

u64 TraceSession::next_request_id() {
  return detail::g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

u64 record_span(std::string_view name, std::string_view cat, u64 start_ns,
                u64 end_ns, u64 request_id, u64 parent_span_id, u64 span_id) {
  if (!TraceSession::active()) return 0;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.request_id = request_id;
  ev.parent_span_id = parent_span_id;
  ev.span_id = span_id != 0 ? span_id : detail::alloc_span_id();
  const u64 id = ev.span_id;
  detail::record(std::move(ev), start_ns, end_ns);
  return id;
}

void ScopedSpan::begin(TraceEvent& ev) {
  ev.request_id = detail::t_ctx_request;
  ev.parent_span_id = detail::t_ctx_span;
  ev.span_id = detail::alloc_span_id();
  // Children opened on this thread during our lifetime hang off us.
  prev_parent_span_ = detail::t_ctx_span;
  detail::t_ctx_span = ev.span_id;
}

void ScopedSpan::end() { detail::t_ctx_span = prev_parent_span_; }

void TraceSession::start() {
  using namespace detail;
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  s.bufs.clear();
  s.start_ns = now_ns();
  g_generation.fetch_add(1, std::memory_order_release);
  g_trace_active.store(true, std::memory_order_release);
}

std::vector<TraceEvent> TraceSession::stop() {
  using namespace detail;
  g_trace_active.store(false, std::memory_order_release);
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& buf : s.bufs) total += buf->events.size();
  merged.reserve(total);
  for (auto& buf : s.bufs) {
    for (TraceEvent& ev : buf->events) merged.push_back(std::move(ev));
  }
  s.bufs.clear();
  // Deterministic order: by start time, stable for ties (per-thread buffers
  // are already in emission order).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

Json chrome_trace_json(std::span<const TraceEvent> events) {
  Json doc = Json::object();
  Json arr = Json::array();
  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e["name"] = ev.name;
    if (!ev.cat.empty()) e["cat"] = ev.cat;
    e["ph"] = "X";
    e["ts"] = ev.ts_us;
    e["dur"] = ev.dur_us;
    e["pid"] = 1;
    e["tid"] = ev.tid;
    if (!ev.args.empty() || ev.request_id != 0) {
      Json args = Json::object();
      if (ev.request_id != 0) {
        args["req"] = ev.request_id;
        args["span"] = ev.span_id;
        args["parent"] = ev.parent_span_id;
      }
      for (const auto& [k, v] : ev.args) args[k] = v;
      e["args"] = std::move(args);
    }
    arr.push_back(std::move(e));
  }
  doc["traceEvents"] = std::move(arr);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

std::vector<SpanSummary> summarize_spans(std::span<const TraceEvent> events) {
  std::map<std::string, std::vector<f64>> by_name;
  for (const TraceEvent& ev : events) by_name[ev.name].push_back(ev.dur_us);
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, durations] : by_name) {
    SpanSummary s;
    s.name = name;
    s.count = static_cast<i64>(durations.size());
    for (f64 d : durations) s.total_us += d;
    s.p50_us = percentile(durations, 50.0);
    s.p90_us = percentile(durations, 90.0);
    s.p99_us = percentile(durations, 99.0);
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanSummary& a, const SpanSummary& b) {
                     return a.total_us > b.total_us;
                   });
  return out;
}

Json RequestBreakdown::to_json() const {
  Json j = Json::object();
  j["request_id"] = request_id;
  j["complete"] = has_root && unreachable == 0;
  j["total_us"] = total_us;
  j["queue_us"] = queue_us;
  j["compile_us"] = compile_us;
  j["sim_us"] = sim_us;
  j["retry_backoff_us"] = retry_backoff_us;
  j["other_us"] = other_us;
  j["spans"] = spans;
  j["unreachable"] = unreachable;
  return j;
}

std::vector<u64> request_ids(std::span<const TraceEvent> events) {
  std::vector<u64> ids;
  for (const TraceEvent& ev : events) {
    if (ev.request_id != 0) ids.push_back(ev.request_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

namespace {

enum class SpanClass { kQueue, kCompile, kSim, kRetry, kOther };

SpanClass classify_span(const TraceEvent& ev) {
  if (ev.name == "pipeline.server.queue_wait") return SpanClass::kQueue;
  if (ev.name == "pipeline.cache.compile" || ev.name == "dsl.compile_kernel") {
    return SpanClass::kCompile;
  }
  if (ev.name.rfind("sim.launch", 0) == 0) return SpanClass::kSim;
  if (ev.name == "resilience.retry.backoff") return SpanClass::kRetry;
  return SpanClass::kOther;
}

}  // namespace

RequestBreakdown request_breakdown(std::span<const TraceEvent> events,
                                   u64 request_id) {
  RequestBreakdown b;
  b.request_id = request_id;
  // Gather the request's spans and index them by span id.
  std::map<u64, const TraceEvent*> by_id;
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& ev : events) {
    if (ev.request_id != request_id) continue;
    spans.push_back(&ev);
    if (ev.span_id != 0) by_id[ev.span_id] = &ev;
    if (ev.parent_span_id == 0) {
      b.has_root = true;
      b.total_us += ev.dur_us;
    }
  }
  b.spans = static_cast<i64>(spans.size());
  for (const TraceEvent* ev : spans) {
    // Walk to the root, noting whether any ancestor is already counted in a
    // critical-path category — nested compile-under-compile (a dsl span
    // inside a cache fill) or sim-under-sim must not double count.
    bool ancestor_counted = false;
    bool reached_root = false;
    u64 parent = ev->parent_span_id;
    std::size_t hops = 0;
    while (parent != 0 && hops++ < spans.size()) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      if (classify_span(*it->second) != SpanClass::kOther) {
        ancestor_counted = true;
      }
      parent = it->second->parent_span_id;
    }
    reached_root = parent == 0;
    if (!reached_root) ++b.unreachable;
    if (ancestor_counted) continue;
    switch (classify_span(*ev)) {
      case SpanClass::kQueue: b.queue_us += ev->dur_us; break;
      case SpanClass::kCompile: b.compile_us += ev->dur_us; break;
      case SpanClass::kSim: b.sim_us += ev->dur_us; break;
      case SpanClass::kRetry: b.retry_backoff_us += ev->dur_us; break;
      case SpanClass::kOther: break;
    }
  }
  b.other_us = b.total_us - b.queue_us - b.compile_us - b.sim_us -
               b.retry_backoff_us;
  if (b.other_us < 0.0) b.other_us = 0.0;
  return b;
}

}  // namespace ispb::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "common/stats.hpp"

namespace ispb::obs {

namespace detail {

std::atomic<bool> g_trace_active{false};

namespace {

struct ThreadBuf {
  u32 tid = 0;
  std::vector<TraceEvent> events;
};

struct SessionState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  u64 start_ns = 0;
};

SessionState& session() {
  static SessionState state;
  return state;
}

// Each session bumps the generation; thread-local buffer pointers from an
// earlier session are detected as stale and re-registered.
std::atomic<u64> g_generation{0};
thread_local ThreadBuf* t_buf = nullptr;
thread_local u64 t_gen = 0;

ThreadBuf* this_thread_buf() {
  const u64 gen = g_generation.load(std::memory_order_acquire);
  if (t_buf != nullptr && t_gen == gen) return t_buf;
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_trace_active.load(std::memory_order_relaxed)) return nullptr;
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<u32>(s.bufs.size());
  t_buf = buf.get();
  t_gen = gen;
  s.bufs.push_back(std::move(buf));
  return t_buf;
}

}  // namespace

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record(TraceEvent&& ev, u64 start_ns, u64 end_ns) {
  if (!g_trace_active.load(std::memory_order_relaxed)) return;
  ThreadBuf* buf = this_thread_buf();
  if (buf == nullptr) return;  // session stopped while we were registering
  const u64 base = session().start_ns;
  ev.ts_us = static_cast<f64>(start_ns - base) * 1e-3;
  ev.dur_us = static_cast<f64>(end_ns - start_ns) * 1e-3;
  ev.tid = buf->tid;
  buf->events.push_back(std::move(ev));
}

}  // namespace detail

void TraceSession::start() {
  using namespace detail;
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  s.bufs.clear();
  s.start_ns = now_ns();
  g_generation.fetch_add(1, std::memory_order_release);
  g_trace_active.store(true, std::memory_order_release);
}

std::vector<TraceEvent> TraceSession::stop() {
  using namespace detail;
  g_trace_active.store(false, std::memory_order_release);
  SessionState& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& buf : s.bufs) total += buf->events.size();
  merged.reserve(total);
  for (auto& buf : s.bufs) {
    for (TraceEvent& ev : buf->events) merged.push_back(std::move(ev));
  }
  s.bufs.clear();
  // Deterministic order: by start time, stable for ties (per-thread buffers
  // are already in emission order).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

Json chrome_trace_json(std::span<const TraceEvent> events) {
  Json doc = Json::object();
  Json arr = Json::array();
  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e["name"] = ev.name;
    if (!ev.cat.empty()) e["cat"] = ev.cat;
    e["ph"] = "X";
    e["ts"] = ev.ts_us;
    e["dur"] = ev.dur_us;
    e["pid"] = 1;
    e["tid"] = ev.tid;
    if (!ev.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : ev.args) args[k] = v;
      e["args"] = std::move(args);
    }
    arr.push_back(std::move(e));
  }
  doc["traceEvents"] = std::move(arr);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

std::vector<SpanSummary> summarize_spans(std::span<const TraceEvent> events) {
  std::map<std::string, std::vector<f64>> by_name;
  for (const TraceEvent& ev : events) by_name[ev.name].push_back(ev.dur_us);
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, durations] : by_name) {
    SpanSummary s;
    s.name = name;
    s.count = static_cast<i64>(durations.size());
    for (f64 d : durations) s.total_us += d;
    s.p50_us = percentile(durations, 50.0);
    s.p90_us = percentile(durations, 90.0);
    s.p99_us = percentile(durations, 99.0);
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanSummary& a, const SpanSummary& b) {
                     return a.total_us > b.total_us;
                   });
  return out;
}

}  // namespace ispb::obs

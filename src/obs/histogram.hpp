// Bounded streaming histogram: log-bucketed (HDR-style), mergeable, with a
// documented relative-error bound on reported percentiles.
//
// The profiling-grade MetricsRegistry retained every sample in a vector —
// fine for a one-shot profile, unbounded under sustained serving. A
// StreamingHistogram holds a fixed array of geometrically sized buckets
// instead: memory is O(bucket count) regardless of how many samples are
// recorded, record() is an index computation plus an increment, and two
// histograms with the same config merge by adding bucket counts (the
// per-thread record / snapshot-and-merge pattern).
//
// Error bound: bucket k covers [min_value * g^k, min_value * g^(k+1)) with
// growth g = (1 + rel_error)^2, and percentile() reports the geometric
// midpoint of the bucket holding the nearest-rank sample. Every value in a
// bucket is within rel_error (relative) of that midpoint, so
//
//     |percentile(p) - exact_nearest_rank_percentile(p)|
//         <= rel_error * exact_nearest_rank_percentile(p)
//
// for any sample distribution, as long as the exact value lies inside the
// bucketed range [min_value, max_value). Values below min_value land in an
// underflow bucket (reported as the tracked exact minimum — absolute error
// < min_value, not relative) and values at or above max_value in an
// overflow bucket (reported as the tracked exact maximum). min/max/count/
// sum are tracked exactly, so p0/p100 and mean are exact.
//
// Thread safety: none by design. Record under the owner's lock (the
// MetricsRegistry and PipelineServer already serialize their stats updates)
// or record into per-thread instances and merge().
#pragma once

#include <optional>
#include <vector>

#include "obs/json.hpp"

namespace ispb::obs {

/// Bucket layout of a StreamingHistogram. Two histograms merge iff their
/// configs are identical.
struct HistogramConfig {
  /// Smallest value resolved relatively; below this is the underflow bucket.
  f64 min_value = 1e-3;
  /// Values >= max_value collapse into the overflow bucket.
  f64 max_value = 1e7;
  /// Documented relative error bound on percentile estimates.
  f64 rel_error = 0.025;

  [[nodiscard]] bool operator==(const HistogramConfig&) const = default;
};

class StreamingHistogram {
 public:
  explicit StreamingHistogram(HistogramConfig config = {});

  /// Records one sample. Non-finite samples are counted but attributed to
  /// the underflow (for -inf/NaN) or overflow (+inf) bucket.
  void record(f64 value);

  /// Adds every sample of `other` into this histogram.
  /// Throws ContractError when the configs differ.
  void merge(const StreamingHistogram& other);

  /// Nearest-rank percentile estimate (p in [0, 100]); nullopt when empty.
  /// See the header comment for the error bound.
  [[nodiscard]] std::optional<f64> percentile(f64 p) const;

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] f64 sum() const { return sum_; }
  /// Exact tracked extrema; nullopt when empty.
  [[nodiscard]] std::optional<f64> min() const;
  [[nodiscard]] std::optional<f64> max() const;
  [[nodiscard]] std::optional<f64> mean() const;

  /// Fixed at construction: the O(1)-in-sample-count memory guarantee.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] const HistogramConfig& config() const { return config_; }

  /// Drops every sample, keeping the bucket layout.
  void reset();

  /// Summary export: count/sum/min/max/mean/p50/p90/p99 + the error bound.
  [[nodiscard]] Json to_json() const;

 private:
  [[nodiscard]] std::size_t bucket_index(f64 value) const;
  [[nodiscard]] f64 bucket_value(std::size_t index) const;

  HistogramConfig config_;
  f64 inv_log_growth_ = 0.0;  ///< 1 / ln((1 + rel_error)^2)
  std::vector<u64> buckets_;  ///< [underflow, log buckets..., overflow]
  u64 count_ = 0;
  f64 sum_ = 0.0;
  f64 min_ = 0.0;  ///< valid iff count_ > 0
  f64 max_ = 0.0;  ///< valid iff count_ > 0
};

}  // namespace ispb::obs

// SLO sliding windows, flight recorder, and the periodic exporter thread.
//
// A serving process needs "how are we doing right now", not "what happened
// since boot": sustained throughput, latency percentiles, and error /
// rejection / deadline-miss rates over the last N seconds. SloWindow keeps
// a ring of fixed-duration time slots, each holding outcome counters plus a
// bounded StreamingHistogram of latencies; recording touches one slot, and
// snapshot() merges the live slots into an SloSnapshot. Slots age out in
// place (a slot is reset when its epoch is reused), so memory is
// O(slots * histogram buckets) forever.
//
// Time is passed in explicitly as steady milliseconds (steady_now_ms() for
// production; tests drive synthetic clocks), so window rotation is
// deterministic under test.
//
// FlightRecorder is the crash-dump side: a bounded ring of timestamped JSON
// frames (periodic SLO snapshots, plus one-off notes like a watchdog
// cutting an overrunning request). It is cheap enough to leave on in
// production and small enough to dump wholesale when something goes wrong —
// the last ~minutes of telemetry survive in memory even if the exporter
// never got to write them out.
//
// SloExporter owns a background thread that periodically calls a sampling
// callback and appends the result to a FlightRecorder. stop() joins; the
// destructor stops if the caller forgot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace ispb::obs {

/// Steady-clock milliseconds: the time base for SLO windows and frames.
[[nodiscard]] u64 steady_now_ms();

/// How one request ended, for rate accounting.
enum class SloOutcome : u8 { kOk, kError, kRejected, kDeadlineMiss };
[[nodiscard]] std::string_view to_string(SloOutcome o);

/// Sliding-window shape: `slots` slots of `slot_ms` each (default: 60 x 1s
/// = one minute of history).
struct SloConfig {
  u64 slot_ms = 1000;
  std::size_t slots = 60;
  HistogramConfig hist;  ///< latency histogram layout per slot
};

/// Point-in-time aggregate over the window.
struct SloSnapshot {
  f64 window_s = 0.0;  ///< span actually covered by live slots
  u64 ok = 0;
  u64 errors = 0;
  u64 rejected = 0;
  u64 deadline_miss = 0;
  f64 throughput_rps = 0.0;  ///< completed-ok per second over the window
  f64 error_rate = 0.0;      ///< of all outcomes in the window
  f64 rejection_rate = 0.0;
  f64 deadline_miss_rate = 0.0;
  std::optional<f64> p50_ms;  ///< of ok-request latencies; nullopt if none
  std::optional<f64> p90_ms;
  std::optional<f64> p99_ms;

  [[nodiscard]] u64 total() const {
    return ok + errors + rejected + deadline_miss;
  }
  [[nodiscard]] Json to_json() const;
};

/// Thread-safe sliding window of request outcomes + latencies.
class SloWindow {
 public:
  explicit SloWindow(SloConfig config = {});

  /// Records one finished request. `latency_ms` is folded into the latency
  /// histogram only for kOk (a rejection has no meaningful service time).
  void record(SloOutcome outcome, f64 latency_ms, u64 now_ms);

  /// Aggregates the slots still inside the window at `now_ms`.
  [[nodiscard]] SloSnapshot snapshot(u64 now_ms) const;

  [[nodiscard]] const SloConfig& config() const { return config_; }

 private:
  struct Slot {
    u64 epoch = 0;  ///< now_ms / slot_ms this slot currently represents
    bool live = false;
    u64 ok = 0;
    u64 errors = 0;
    u64 rejected = 0;
    u64 deadline_miss = 0;
    StreamingHistogram latency;
  };

  Slot& slot_for_locked(u64 now_ms);

  SloConfig config_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

/// Bounded ring of timestamped JSON frames; oldest dropped first.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Appends a frame. `tag` names the producer ("slo", "watchdog_cut", ...).
  void note(std::string_view tag, Json payload, u64 now_ms);
  void note(std::string_view tag, Json payload) {
    note(tag, std::move(payload), steady_now_ms());
  }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Whole-ring dump, oldest first: {"capacity", "dropped", "frames": [...]}.
  [[nodiscard]] Json to_json() const;

 private:
  struct Frame {
    u64 t_ms = 0;
    std::string tag;
    Json payload;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Frame> frames_;
  u64 dropped_ = 0;
};

/// Background sampler: every `interval_ms`, calls `sample` and notes the
/// result into `sink` under `tag`. Samples once more on stop() so short
/// runs still leave at least one frame.
class SloExporter {
 public:
  SloExporter(FlightRecorder& sink, std::function<Json()> sample,
              u64 interval_ms = 1000, std::string tag = "slo");
  ~SloExporter();
  SloExporter(const SloExporter&) = delete;
  SloExporter& operator=(const SloExporter&) = delete;

  /// Idempotent; joins the sampler thread.
  void stop();

 private:
  void run();

  FlightRecorder& sink_;
  std::function<Json()> sample_;
  u64 interval_ms_;
  std::string tag_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ispb::obs

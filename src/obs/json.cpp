#include "obs/json.hpp"

#include <cmath>
#include <charconv>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ispb::obs {

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw ContractError("Json: not a bool");
  return bool_;
}

f64 Json::as_number() const {
  if (kind_ != Kind::kNumber) throw ContractError("Json: not a number");
  return num_;
}

i64 Json::as_int() const { return static_cast<i64>(as_number()); }

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw ContractError("Json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw ContractError("Json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) throw ContractError("Json: not an object");
  return obj_;
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw ContractError("Json: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(std::string(key), Json());
  return obj_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw ContractError("Json: not an array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return arr_.size();
    case Kind::kObject:
      return obj_.size();
    default:
      return 0;
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::ostream& os, f64 v, bool is_int) {
  // NaN/Inf are not representable in JSON; emit null (matches what most
  // serializers do and keeps the output parseable).
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  if (is_int) {
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<i64>(v));
    ISPB_ENSURES(ec == std::errc());
    os.write(buf, ptr - buf);
    return;
  }
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  ISPB_ENSURES(ec == std::errc());
  os.write(buf, ptr - buf);
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    os << '\n';
    for (int i = 0; i < d * indent; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      dump_number(os, num_, is_int_);
      break;
    case Kind::kString:
      os << '"' << json_escape(str_) << '"';
      break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << ',';
        newline_pad(depth + 1);
        arr_[i].dump_impl(os, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) os << ',';
        newline_pad(depth + 1);
        os << '"' << json_escape(obj_[i].first) << "\":";
        if (indent > 0) os << ' ';
        obj_[i].second.dump_impl(os, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw IoError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                  why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          u32 code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<u32>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<u32>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<u32>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by any producer in this repo; reject them strictly).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogates unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    f64 value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("bad number");
    if (integral && value >= -9.2e18 && value <= 9.2e18 &&
        value == std::floor(value)) {
      return Json(static_cast<i64>(value));
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ispb::obs

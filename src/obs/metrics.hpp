// Metrics registry: named counters, gauges and histograms with labels.
//
// The simulator publishes per-launch counters (issue slots, divergence,
// memory transactions, modeled time) labeled by kernel name; the profiler
// installs a registry around a pipeline run and reports the aggregate.
//
// Null fast path: nothing is recorded — and nothing allocated — unless a
// registry is installed; `MetricsRegistry::installed()` is one relaxed
// atomic load, checked once per publication site.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace ispb::obs {

/// Label set of one metric series, e.g. {{"kernel", "gauss_isp_clamp"}}.
/// Order-insensitive: labels are canonicalized (sorted by key) so the same
/// set given in any order addresses the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// What a metric series is.
enum class MetricKind : u8 { kCounter, kGauge, kHistogram };
[[nodiscard]] std::string_view to_string(MetricKind k);

/// Thread-safe registry of metric series. Counters accumulate, gauges keep
/// the last value, histograms stream samples into a bounded
/// StreamingHistogram (O(buckets) memory under sustained serving; see
/// obs/histogram.hpp for the percentile error bound).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a counter series (created at 0 on first use).
  void add(std::string_view name, f64 delta, const Labels& labels = {});
  /// Sets a gauge series to `value`.
  void set(std::string_view name, f64 value, const Labels& labels = {});
  /// Records one histogram sample.
  void observe(std::string_view name, f64 sample, const Labels& labels = {});

  /// Point reads (0 when the series does not exist).
  [[nodiscard]] f64 value(std::string_view name,
                          const Labels& labels = {}) const;
  /// Copy of a histogram series' state; nullopt when the series does not
  /// exist. Replaces the old keep-every-sample `samples()` accessor.
  [[nodiscard]] std::optional<StreamingHistogram> histogram(
      std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] std::size_t series_count() const;

  /// Flat export: array of {name, kind, labels, value | summary}.
  /// Histograms report count/min/max/mean/p50/p90/p99.
  [[nodiscard]] Json to_json() const;

  /// The process-wide installed registry, or nullptr (the null-sink path).
  [[nodiscard]] static MetricsRegistry* installed() {
    return g_installed.load(std::memory_order_relaxed);
  }

  /// RAII installation; restores the previous registry on destruction.
  class ScopedInstall {
   public:
    explicit ScopedInstall(MetricsRegistry& reg)
        : prev_(g_installed.exchange(&reg, std::memory_order_release)) {}
    ~ScopedInstall() { g_installed.store(prev_, std::memory_order_release); }
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    MetricsRegistry* prev_;
  };

 private:
  struct Series {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    f64 value = 0.0;
    /// Bounded sample sketch; engaged only for kHistogram series.
    std::optional<StreamingHistogram> hist;
  };

  Series& series_locked(std::string_view name, const Labels& labels,
                        MetricKind kind);

  static std::atomic<MetricsRegistry*> g_installed;

  mutable std::mutex mu_;
  std::map<std::string, Series> series_;  ///< by canonical key (stable order)
};

}  // namespace ispb::obs

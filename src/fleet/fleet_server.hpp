// FleetServer: multi-device sharded serving with health-checked failover.
//
// One PipelineServer shard per simulated device (heterogeneous mixes —
// GTX680 next to RTX2080 — are the point). A request is placed on the shard
// with the lowest (inflight + 1) / speed score, where speed comes from the
// existing per-device analytic model: modeled graph instructions against
// the device's SM count, clock and issue-throughput factor at the kernels'
// occupancy (sim::compute_occupancy / throughput_factor). A 46-SM Turing
// therefore absorbs proportionally more load than an 8-SMX Kepler, and the
// router needs no calibration run.
//
// Health: every shard gets a device-level resilience::CircuitBreaker
// (distinct from the per-kernel breakers inside the shard). A request that
// settles kError records a device failure; a tripped breaker quarantines
// the device — no placements — until its cooldown elapses, after which the
// router deliberately routes the next request there as the half-open probe
// (probe-first, bounded by half_open_probes) so a healed device re-enters
// rotation without a side channel. Probe dispatches fire the
// `health.probe` fault point; every placement fires `shard.dispatch`; the
// per-launch `device.launch` point lives in the executor.
//
// Failover: a request stranded on a dead or quarantined device is
// re-dispatched to the next eligible shard (each device tried at most
// once). Requests are pure (graph, source) -> pixels, so re-dispatch is
// idempotent and bit-identity is preserved; remaining deadline budget is
// carried, and kDeadlineExpired is terminal (the budget is gone, not the
// device). Shard queue overflow bounces to another shard without a health
// penalty.
//
// Admission: before placement, the AdmissionController walks the
// degradation ladder (admission.hpp): shed low tiers under load, brown out
// survivors to kNaive (bit-identical), reject at saturation. Shed and
// rejected requests settle immediately — submit() never blocks.
//
// Every settled request resolves its future exactly once, from whichever
// thread completed the terminal dispatch. shutdown() drains every shard;
// cross-shard failovers landing on an already-drained shard settle inline
// as rejected, so no future is ever orphaned.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fleet/admission.hpp"
#include "gpusim/device.hpp"
#include "pipeline/server.hpp"

namespace ispb::fleet {

struct FleetConfig {
  /// Devices to shard over, one PipelineServer each; 1..64 entries.
  std::vector<sim::DeviceSpec> devices;
  /// Per-shard server template. executor.sim.device is overwritten per
  /// shard; executor.cache (when set) is shared by all shards — cache keys
  /// are device-scoped already. clock defaults to `clock` below.
  pipeline::ServerConfig shard;
  AdmissionConfig admission;
  /// Device-level quarantine breakers (failure threshold, cooldown,
  /// half-open probe budget).
  resilience::BreakerConfig device_breaker;
  /// Clock for the device breakers (and the shards, unless shard.clock is
  /// set); nullptr = wall clock.
  resilience::Clock* clock = nullptr;
};

enum class FleetStatus : u8 {
  kOk,
  kShed,             ///< admission dropped it (low tier under load)
  kRejected,         ///< admission reject, every shard overflowed, or shutdown
  kDeadlineExpired,  ///< budget exhausted queued/executing/failing over
  kError,            ///< all eligible devices failed it; see error
};
[[nodiscard]] std::string_view to_string(FleetStatus s);

struct FleetRequest {
  std::shared_ptr<const pipeline::KernelGraph> graph;
  std::shared_ptr<const Image<f32>> source;
  /// Whole-request budget across queueing, execution and failover; 0=none.
  f64 deadline_ms = 0.0;
  std::optional<exec::Backend> backend;
  /// Priority tier, 0 = highest; clamped to admission.tiers.
  u32 tier = 0;
  /// Force this kernel variant (warmup, directed tests); admission brownout
  /// overrides it with kNaive. nullopt = the shard executor decides.
  std::optional<codegen::Variant> variant;
  /// Route to this device only (tests, directed probes); "" = router picks.
  /// Pinned dispatches still respect the device breaker.
  std::string pin_device;
};

struct FleetResponse {
  FleetStatus status = FleetStatus::kOk;
  /// Inner response of the terminal dispatch; default for kShed and
  /// never-dispatched rejections.
  pipeline::ServeResponse serve;
  std::string device;  ///< device of the terminal dispatch ("" if none)
  u32 tier = 0;
  u32 dispatches = 0;  ///< shard placements; > 1 means failover happened
  bool browned_out = false;  ///< admission served it kNaive
  f64 total_ms = 0.0;        ///< fleet submit -> settle wall time
  std::string error;
};

struct FleetDeviceStats {
  std::string device;
  u64 routed = 0;     ///< dispatches placed on this device
  u64 completed = 0;  ///< kOk settled here
  u64 errors = 0;     ///< kError settled here (incl. injected dispatch/probe)
  u64 rejected = 0;   ///< queue-overflow bounces off this shard
  u64 probes = 0;     ///< half-open probes admitted by the device breaker
  u64 quarantines = 0;  ///< breaker trips (quarantine episodes)
  u64 inflight = 0;     ///< currently dispatched, not yet settled
};

struct FleetTierStats {
  u32 tier = 0;
  u64 submitted = 0;
  u64 shed = 0;
  u64 browned_out = 0;  ///< kOk responses served kNaive by admission
  u64 completed = 0;
  u64 rejected = 0;
  u64 deadline_expired = 0;
  u64 errors = 0;
  obs::StreamingHistogram latency_ms;  ///< kOk fleet total_ms
};

struct FleetStats {
  u64 submitted = 0;
  u64 completed = 0;
  u64 shed = 0;
  u64 rejected = 0;
  u64 deadline_expired = 0;
  u64 errors = 0;
  u64 failovers = 0;  ///< re-dispatch attempts after a device failure
  std::vector<FleetDeviceStats> devices;
  std::vector<FleetTierStats> tiers;
};

class FleetServer {
 public:
  explicit FleetServer(FleetConfig config);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Admits (or sheds/rejects) and places one request. Never blocks; the
  /// future settles exactly once.
  [[nodiscard]] std::future<FleetResponse> submit(FleetRequest request);

  /// Resumes every shard constructed start_paused. Idempotent.
  void resume();
  /// Stops accepting and drains every shard. Idempotent.
  void shutdown();

  [[nodiscard]] FleetStats stats() const;
  /// Device breaker snapshots, in device order.
  [[nodiscard]] std::vector<resilience::BreakerSnapshot> device_health() const;
  /// Per-device SLO slices from each shard's sliding window.
  [[nodiscard]] std::vector<std::pair<std::string, obs::SloSnapshot>>
  device_slo() const;
  /// Shard-internal health (kernel breakers, orphans) for invariants.
  [[nodiscard]] resilience::HealthState shard_health(std::size_t index) const;
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const sim::DeviceSpec& device(std::size_t index) const {
    return shards_[index]->device;
  }
  /// Fraction of fleet slots (queue + workers, all shards) in flight.
  [[nodiscard]] f64 occupancy() const;

 private:
  struct Shard {
    sim::DeviceSpec device;
    std::unique_ptr<pipeline::PipelineServer> server;
    std::unique_ptr<resilience::CircuitBreaker> breaker;
    std::atomic<u64> inflight{0};
  };
  /// One in-flight fleet request. Mutated only by the thread currently
  /// driving it (submit caller, then the settling shard worker); handoffs
  /// are ordered through the shard queue mutexes.
  struct Pending {
    FleetRequest request;
    std::promise<FleetResponse> promise;
    std::chrono::steady_clock::time_point submitted_at;
    u32 tier = 0;
    bool browned_out = false;
    u32 dispatches = 0;
    u64 tried_mask = 0;  ///< bit per shard already attempted
    FleetStatus exhausted_status = FleetStatus::kError;
    std::string last_error;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// Picks the next eligible shard and dispatches, or settles the request
  /// (deadline gone / no device left).
  void route(const PendingPtr& p);
  void dispatch_to(const PendingPtr& p, std::size_t index, bool probe);
  void on_settle(const PendingPtr& p, std::size_t index, bool probe,
                 pipeline::ServeResponse&& r);
  void settle(const PendingPtr& p, FleetStatus status,
              pipeline::ServeResponse&& serve, std::string device,
              std::string error);
  /// Breaker failure + quarantine accounting for a device-level error.
  void device_failure(std::size_t index);
  /// Memoized per-(device, graph) speed estimate for placement scoring.
  [[nodiscard]] f64 speed_weight(std::size_t index,
                                 const pipeline::KernelGraph& graph);

  FleetConfig config_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<u64> total_inflight_{0};
  std::atomic<bool> accepting_{true};

  mutable std::mutex mu_;  ///< stats_ and weights_
  FleetStats stats_;
  std::unordered_map<std::string, f64> weights_;
};

}  // namespace ispb::fleet

// Tiered admission control for the fleet server.
//
// Requests carry a priority tier (0 = highest). As fleet occupancy rises,
// the controller walks the degradation ladder instead of failing cliff-style:
//
//   occupancy < shed(tier)      admit at full quality
//   occupancy >= shed(tier)     shed (tier > 0 only; lowest tier first)
//   occupancy >= brownout_start brown out surviving tiers: serve kNaive —
//                               bit-identical pixels, cheaper plan — which
//                               frees compile and occupancy headroom
//   occupancy >= reject_start   reject everything not already shed
//
// Shed thresholds are spaced evenly between shed_start (the lowest tier)
// and reject_start (just above tier 1), so load peels tiers off one by one
// from the bottom. Tier 0 never sheds: it degrades via brownout and is
// rejected only at reject_start or by shard queue overflow.
//
// The controller is stateless — a pure function of (tier, occupancy) — so
// the fleet server can consult it lock-free on the submit path and tests
// can table-drive the ladder.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace ispb::fleet {

struct AdmissionConfig {
  /// Priority tiers; requests clamp to [0, tiers). 0 = highest priority.
  u32 tiers = 3;
  /// Occupancy where the lowest tier starts shedding.
  f64 shed_start = 0.50;
  /// Occupancy where admitted tiers are served kNaive (browned out).
  f64 brownout_start = 0.75;
  /// Occupancy where every tier is rejected outright.
  f64 reject_start = 0.95;
};

enum class AdmissionDecision : u8 { kAdmit, kBrownout, kShed, kReject };
[[nodiscard]] std::string_view to_string(AdmissionDecision d);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// The ladder decision for a request of `tier` at fleet `occupancy`
  /// (0 = idle, 1 = every queue slot and worker busy).
  [[nodiscard]] AdmissionDecision decide(u32 tier, f64 occupancy) const;

  /// Occupancy at which `tier` starts shedding; +infinity for tier 0.
  [[nodiscard]] f64 shed_threshold(u32 tier) const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
};

}  // namespace ispb::fleet

#include "fleet/fleet_server.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "core/model.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injector.hpp"

namespace ispb::fleet {

namespace {

f64 ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<f64, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void publish_fleet_status(FleetStatus status) {
  obs::MetricsRegistry* reg = obs::MetricsRegistry::installed();
  if (reg == nullptr) return;
  reg->add("fleet.requests", 1.0,
           {{"status", std::string(to_string(status))}});
}

}  // namespace

std::string_view to_string(FleetStatus s) {
  switch (s) {
    case FleetStatus::kOk:
      return "ok";
    case FleetStatus::kShed:
      return "shed";
    case FleetStatus::kRejected:
      return "rejected";
    case FleetStatus::kDeadlineExpired:
      return "deadline_expired";
    case FleetStatus::kError:
      return "error";
  }
  return "?";
}

FleetServer::FleetServer(FleetConfig config)
    : config_(std::move(config)), admission_(config_.admission) {
  ISPB_EXPECTS(!config_.devices.empty() && config_.devices.size() <= 64);
  stats_.devices.resize(config_.devices.size());
  stats_.tiers.resize(config_.admission.tiers);
  for (u32 t = 0; t < config_.admission.tiers; ++t) stats_.tiers[t].tier = t;

  shards_.reserve(config_.devices.size());
  for (std::size_t i = 0; i < config_.devices.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->device = config_.devices[i];
    stats_.devices[i].device = shard->device.name;
    pipeline::ServerConfig sc = config_.shard;
    sc.executor.sim.device = shard->device;
    if (sc.clock == nullptr) sc.clock = config_.clock;
    shard->server = std::make_unique<pipeline::PipelineServer>(std::move(sc));
    shard->breaker = std::make_unique<resilience::CircuitBreaker>(
        "device:" + shard->device.name, config_.device_breaker, config_.clock);
    shards_.push_back(std::move(shard));
  }
}

FleetServer::~FleetServer() { shutdown(); }

std::future<FleetResponse> FleetServer::submit(FleetRequest request) {
  ISPB_EXPECTS(request.graph != nullptr && request.source != nullptr);
  auto p = std::make_shared<Pending>();
  p->tier = std::min(request.tier, config_.admission.tiers - 1);
  p->request = std::move(request);
  p->submitted_at = std::chrono::steady_clock::now();
  std::future<FleetResponse> future = p->promise.get_future();

  const f64 occ = occupancy();
  {
    std::lock_guard lock(mu_);
    ++stats_.submitted;
    ++stats_.tiers[p->tier].submitted;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    settle(p, FleetStatus::kRejected, {}, "", "fleet shut down");
    return future;
  }
  switch (admission_.decide(p->tier, occ)) {
    case AdmissionDecision::kReject:
      settle(p, FleetStatus::kRejected, {}, "",
             "admission: fleet saturated (occupancy " + std::to_string(occ) +
                 ")");
      return future;
    case AdmissionDecision::kShed:
      settle(p, FleetStatus::kShed, {}, "",
             "admission: shed tier " + std::to_string(p->tier) +
                 " at occupancy " + std::to_string(occ));
      return future;
    case AdmissionDecision::kBrownout:
      p->browned_out = true;
      break;
    case AdmissionDecision::kAdmit:
      break;
  }
  route(p);
  return future;
}

void FleetServer::route(const PendingPtr& p) {
  // Deadline covers failover hops too: once the budget is gone the request
  // settles instead of burning another device.
  f64 remaining_ms = 0.0;
  if (p->request.deadline_ms > 0.0) {
    remaining_ms = p->request.deadline_ms - ms_since(p->submitted_at);
    if (remaining_ms <= 0.0) {
      pipeline::ServeResponse r;
      r.status = pipeline::ServeStatus::kDeadlineExpired;
      settle(p, FleetStatus::kDeadlineExpired, std::move(r), "",
             "deadline expired during placement/failover");
      return;
    }
  }

  if (!p->request.pin_device.empty()) {
    std::size_t pin = shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i]->device.name == p->request.pin_device) pin = i;
    }
    if (pin == shards_.size()) {
      settle(p, FleetStatus::kError, {}, "",
             "unknown pinned device '" + p->request.pin_device + "'");
      return;
    }
    if ((p->tried_mask >> pin) & 1u) {
      settle(p, p->exhausted_status, {}, "", p->last_error);
      return;
    }
    const bool was_closed = shards_[pin]->breaker->snapshot().state ==
                            resilience::BreakerState::kClosed;
    if (!shards_[pin]->breaker->allow()) {
      settle(p, FleetStatus::kError, {}, "",
             "pinned device '" + p->request.pin_device + "' is quarantined");
      return;
    }
    dispatch_to(p, pin, /*probe=*/!was_closed);
    return;
  }

  // Probe-first: a quarantined device whose cooldown elapsed takes this
  // request as its half-open probe (breaker-bounded), so a healed device
  // re-enters rotation; otherwise pick the lowest-loaded-per-speed closed
  // shard.
  std::size_t best = shards_.size();
  f64 best_score = 0.0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if ((p->tried_mask >> i) & 1u) continue;
    Shard& shard = *shards_[i];
    if (shard.breaker->snapshot().state !=
        resilience::BreakerState::kClosed) {
      if (shard.breaker->allow()) {
        dispatch_to(p, i, /*probe=*/true);
        return;
      }
      continue;  // quarantined, cooldown still running
    }
    const f64 weight = speed_weight(i, *p->request.graph);
    const f64 score =
        static_cast<f64>(shard.inflight.load(std::memory_order_relaxed) + 1) /
        weight;
    if (best == shards_.size() || score < best_score) {
      best = i;
      best_score = score;
    }
  }
  if (best == shards_.size()) {
    settle(p, p->exhausted_status, {}, "",
           p->last_error.empty()
               ? "no eligible device (all tried or quarantined)"
               : p->last_error);
    return;
  }
  // The closed-state check above is advisory; allow() is authoritative and
  // may hand out a probe if the breaker tripped in between.
  if (!shards_[best]->breaker->allow()) {
    p->tried_mask |= u64{1} << best;
    route(p);
    return;
  }
  dispatch_to(p, best, /*probe=*/false);
}

void FleetServer::dispatch_to(const PendingPtr& p, std::size_t index,
                              bool probe) {
  Shard& shard = *shards_[index];
  p->tried_mask |= u64{1} << index;
  ++p->dispatches;
  try {
    resilience::fault_point("shard.dispatch", shard.device.name);
    if (probe) resilience::fault_point("health.probe", shard.device.name);
  } catch (const std::exception& e) {
    // Injected dispatch/probe failure: charge the device and move on.
    device_failure(index);
    {
      std::lock_guard lock(mu_);
      ++stats_.devices[index].errors;
    }
    p->last_error = e.what();
    p->exhausted_status = FleetStatus::kError;
    route(p);
    return;
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.devices[index].routed;
  }
  shard.inflight.fetch_add(1, std::memory_order_relaxed);
  total_inflight_.fetch_add(1, std::memory_order_relaxed);

  pipeline::ServeRequest sreq;
  sreq.graph = p->request.graph;
  sreq.source = p->request.source;
  sreq.backend = p->request.backend;
  sreq.variant = p->request.variant;
  if (p->browned_out) sreq.variant = codegen::Variant::kNaive;
  if (p->request.deadline_ms > 0.0) {
    sreq.deadline_ms =
        std::max(0.1, p->request.deadline_ms - ms_since(p->submitted_at));
  }
  shard.server->submit_async(
      std::move(sreq), [this, p, index, probe](pipeline::ServeResponse&& r) {
        on_settle(p, index, probe, std::move(r));
      });
}

void FleetServer::on_settle(const PendingPtr& p, std::size_t index, bool probe,
                            pipeline::ServeResponse&& r) {
  Shard& shard = *shards_[index];
  shard.inflight.fetch_sub(1, std::memory_order_relaxed);
  total_inflight_.fetch_sub(1, std::memory_order_relaxed);

  switch (r.status) {
    case pipeline::ServeStatus::kOk:
      shard.breaker->record_success();
      {
        std::lock_guard lock(mu_);
        ++stats_.devices[index].completed;
      }
      settle(p, FleetStatus::kOk, std::move(r), shard.device.name, "");
      return;
    case pipeline::ServeStatus::kError:
      // Device-level failure: quarantine pressure + failover re-dispatch.
      device_failure(index);
      {
        std::lock_guard lock(mu_);
        ++stats_.devices[index].errors;
        ++stats_.failovers;
      }
      p->last_error = r.error;
      p->exhausted_status = FleetStatus::kError;
      route(p);
      return;
    case pipeline::ServeStatus::kDeadlineExpired:
      // Terminal: the budget is spent, not the device. A probe that timed
      // out did not prove health — re-open so the slot is not leaked.
      if (probe) shard.breaker->record_failure();
      settle(p, FleetStatus::kDeadlineExpired, std::move(r),
             shard.device.name, "");
      return;
    case pipeline::ServeStatus::kRejected:
      // Shard overflow (or drain): bounce to another shard, no health
      // penalty — a full queue is load, not sickness. (An admitted probe
      // must still release its slot; re-opening does that.)
      if (probe) shard.breaker->record_failure();
      {
        std::lock_guard lock(mu_);
        ++stats_.devices[index].rejected;
      }
      p->last_error = r.error;
      p->exhausted_status = FleetStatus::kRejected;
      route(p);
      return;
  }
}

void FleetServer::settle(const PendingPtr& p, FleetStatus status,
                         pipeline::ServeResponse&& serve, std::string device,
                         std::string error) {
  FleetResponse resp;
  resp.status = status;
  resp.serve = std::move(serve);
  resp.device = std::move(device);
  resp.tier = p->tier;
  resp.dispatches = p->dispatches;
  resp.browned_out = p->browned_out && status == FleetStatus::kOk;
  resp.total_ms = ms_since(p->submitted_at);
  resp.error = !error.empty() ? std::move(error) : resp.serve.error;

  {
    std::lock_guard lock(mu_);
    FleetTierStats& tier = stats_.tiers[p->tier];
    switch (status) {
      case FleetStatus::kOk:
        ++stats_.completed;
        ++tier.completed;
        if (resp.browned_out) ++tier.browned_out;
        tier.latency_ms.record(resp.total_ms);
        break;
      case FleetStatus::kShed:
        ++stats_.shed;
        ++tier.shed;
        break;
      case FleetStatus::kRejected:
        ++stats_.rejected;
        ++tier.rejected;
        break;
      case FleetStatus::kDeadlineExpired:
        ++stats_.deadline_expired;
        ++tier.deadline_expired;
        break;
      case FleetStatus::kError:
        ++stats_.errors;
        ++tier.errors;
        break;
    }
  }
  publish_fleet_status(status);
  p->promise.set_value(std::move(resp));
}

void FleetServer::device_failure(std::size_t index) {
  resilience::CircuitBreaker& breaker = *shards_[index]->breaker;
  const u64 trips_before = breaker.snapshot().trips;
  breaker.record_failure();
  if (breaker.snapshot().trips > trips_before) {
    std::lock_guard lock(mu_);
    ++stats_.devices[index].quarantines;
  }
}

f64 FleetServer::speed_weight(std::size_t index,
                              const pipeline::KernelGraph& graph) {
  const Shard& shard = *shards_[index];
  const std::string key = shard.device.name + "|" + graph.name;
  {
    std::lock_guard lock(mu_);
    const auto it = weights_.find(key);
    if (it != weights_.end()) return it->second;
  }
  // Modeled instruction load of the graph (device-independent; a nominal
  // image size cancels across devices) against the device's issue capacity
  // at the kernels' rough occupancy — the same occupancy/cost model the
  // planner uses, evaluated without compiling anything.
  const sim::DeviceSpec& dev = shard.device;
  const BlockSize block = config_.shard.executor.sim.block;
  f64 instructions = 0.0;
  for (const pipeline::KernelGraph::Stage& stage : graph.stages) {
    const ModelInputs in = default_model_inputs(
        Size2{256, 256}, block, stage.spec.window(),
        config_.shard.executor.sim.pattern);
    instructions += naive_instructions(in);
  }
  instructions = std::max(instructions, 1.0);
  const sim::Occupancy occ =
      sim::compute_occupancy(dev, block, /*regs_per_thread=*/32);
  const f64 capacity = static_cast<f64>(dev.num_sms) * dev.clock_ghz *
                       sim::throughput_factor(dev, occ);
  const f64 weight = std::max(capacity / instructions, 1e-12);
  std::lock_guard lock(mu_);
  weights_.emplace(key, weight);
  return weight;
}

void FleetServer::resume() {
  for (auto& shard : shards_) shard->server->resume();
}

void FleetServer::shutdown() {
  accepting_.store(false, std::memory_order_release);
  // Draining shard k may fail requests over into shard k+1 (still live) or
  // shard k-1 (already drained; the re-dispatch settles inline as
  // rejected). Either way every pending request is settled by the time the
  // last shard finishes draining.
  for (auto& shard : shards_) shard->server->shutdown();
}

FleetStats FleetServer::stats() const {
  FleetStats out;
  {
    std::lock_guard lock(mu_);
    out = stats_;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const resilience::BreakerSnapshot b = shards_[i]->breaker->snapshot();
    out.devices[i].probes = b.probes;
    out.devices[i].inflight =
        shards_[i]->inflight.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<resilience::BreakerSnapshot> FleetServer::device_health() const {
  std::vector<resilience::BreakerSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->breaker->snapshot());
  return out;
}

std::vector<std::pair<std::string, obs::SloSnapshot>> FleetServer::device_slo()
    const {
  std::vector<std::pair<std::string, obs::SloSnapshot>> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.emplace_back(shard->device.name, shard->server->slo_snapshot());
  }
  return out;
}

resilience::HealthState FleetServer::shard_health(std::size_t index) const {
  return shards_[index]->server->health();
}

f64 FleetServer::occupancy() const {
  const f64 slots =
      static_cast<f64>(shards_.size()) *
      (static_cast<f64>(config_.shard.queue_capacity) +
       static_cast<f64>(std::max(config_.shard.workers, 1)));
  return static_cast<f64>(total_inflight_.load(std::memory_order_relaxed)) /
         std::max(slots, 1.0);
}

}  // namespace ispb::fleet

#include "fleet/admission.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace ispb::fleet {

std::string_view to_string(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kBrownout:
      return "brownout";
    case AdmissionDecision::kShed:
      return "shed";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  ISPB_EXPECTS(config_.tiers >= 1);
  ISPB_EXPECTS(config_.shed_start > 0.0);
  ISPB_EXPECTS(config_.shed_start <= config_.brownout_start);
  ISPB_EXPECTS(config_.brownout_start <= config_.reject_start);
}

f64 AdmissionController::shed_threshold(u32 tier) const {
  if (tier == 0) return std::numeric_limits<f64>::infinity();
  const u32 tiers = std::max<u32>(config_.tiers, 2);
  const u32 t = std::min(tier, tiers - 1);
  const f64 span = config_.reject_start - config_.shed_start;
  // Lowest tier sheds at shed_start; each higher tier holds on for an even
  // share of the remaining headroom up to reject_start.
  return config_.shed_start +
         span * static_cast<f64>(tiers - 1 - t) / static_cast<f64>(tiers - 1);
}

AdmissionDecision AdmissionController::decide(u32 tier, f64 occupancy) const {
  if (occupancy >= config_.reject_start) return AdmissionDecision::kReject;
  if (occupancy >= shed_threshold(tier)) return AdmissionDecision::kShed;
  if (occupancy >= config_.brownout_start) return AdmissionDecision::kBrownout;
  return AdmissionDecision::kAdmit;
}

}  // namespace ispb::fleet

#include "border/border.hpp"

namespace ispb {

std::string_view to_string(BorderPattern p) {
  switch (p) {
    case BorderPattern::kClamp:
      return "clamp";
    case BorderPattern::kMirror:
      return "mirror";
    case BorderPattern::kRepeat:
      return "repeat";
    case BorderPattern::kConstant:
      return "constant";
  }
  return "?";
}

std::optional<BorderPattern> parse_border_pattern(std::string_view name) {
  for (BorderPattern p : kAllBorderPatterns) {
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

i32 map_index(BorderPattern pattern, i32 coord, i32 size) {
  ISPB_EXPECTS(size > 0);
  switch (pattern) {
    case BorderPattern::kClamp: {
      if (coord < 0) return 0;
      if (coord >= size) return size - 1;
      return coord;
    }
    case BorderPattern::kMirror: {
      // Reflect with the edge pixel included: ..., 1, 0 | 0, 1, ..., s-1 |
      // s-1, s-2, ... The sequence is periodic with period 2*size; fold into
      // [0, 2*size) first, then reflect the upper half.
      const i64 period = 2 * static_cast<i64>(size);
      i64 m = static_cast<i64>(coord) % period;
      if (m < 0) m += period;
      if (m >= size) m = period - 1 - m;
      return static_cast<i32>(m);
    }
    case BorderPattern::kRepeat: {
      // Mathematical modulo; equivalent to the while loops of Listing 1.
      i64 m = static_cast<i64>(coord) % size;
      if (m < 0) m += size;
      return static_cast<i32>(m);
    }
    case BorderPattern::kConstant: {
      // Constant has no index remapping; callers must test bounds and
      // substitute the constant themselves (see border_read).
      ISPB_EXPECTS(coord >= 0 && coord < size);
      return coord;
    }
  }
  ISPB_ASSERT(false);
  return 0;
}

Index2 map_index_2d(BorderPattern pattern, Index2 p, Size2 size) {
  return Index2{map_index(pattern, p.x, size.x),
                map_index(pattern, p.y, size.y)};
}

i32 check_cost_per_side(BorderPattern p) {
  switch (p) {
    case BorderPattern::kClamp:
      return 2;  // setp + selp (or min/max)
    case BorderPattern::kMirror:
      return 3;  // setp + arithmetic remap + selp
    case BorderPattern::kRepeat:
      return 4;  // loop: setp + add + branch (amortized one trip) + overhead
    case BorderPattern::kConstant:
      return 2;  // setp + predicate combine
  }
  ISPB_ASSERT(false);
  return 0;
}

}  // namespace ispb

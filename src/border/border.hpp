// Border-handling patterns (paper Section III-A, Figure 2, Listing 1).
//
// Four patterns are supported: Clamp (a.k.a. Duplicate), Mirror, Repeat
// (a.k.a. Periodic) and Constant. The scalar index-mapping functions in this
// module are the semantic ground truth: the DSL's CPU reference backend, the
// IR code generator and every property test all appeal to these definitions.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ispb {

/// Out-of-bounds policy for stencil reads.
enum class BorderPattern : u8 {
  kClamp,     ///< Return the nearest valid pixel (edge duplication).
  kMirror,    ///< Reflect at the border (edge pixel included in the fold).
  kRepeat,    ///< Tile the image periodically along both dimensions.
  kConstant,  ///< Return a user-defined constant for every OOB access.
};

/// All patterns, in the order used by the paper's tables.
inline constexpr std::array<BorderPattern, 4> kAllBorderPatterns = {
    BorderPattern::kClamp, BorderPattern::kMirror, BorderPattern::kRepeat,
    BorderPattern::kConstant};

[[nodiscard]] std::string_view to_string(BorderPattern p);

/// Parses "clamp" / "mirror" / "repeat" / "constant" (case-sensitive).
[[nodiscard]] std::optional<BorderPattern> parse_border_pattern(
    std::string_view name);

/// Sides of the iteration space a region may have to check, as a bitmask.
enum class Side : u8 {
  kNone = 0,
  kLeft = 1 << 0,
  kRight = 1 << 1,
  kTop = 1 << 2,
  kBottom = 1 << 3,
};

[[nodiscard]] constexpr Side operator|(Side a, Side b) {
  return static_cast<Side>(static_cast<u8>(a) | static_cast<u8>(b));
}
[[nodiscard]] constexpr Side operator&(Side a, Side b) {
  return static_cast<Side>(static_cast<u8>(a) & static_cast<u8>(b));
}
[[nodiscard]] constexpr bool has_side(Side mask, Side s) {
  return (mask & s) != Side::kNone;
}
/// Number of set sides in the mask.
[[nodiscard]] constexpr i32 side_count(Side mask) {
  i32 n = 0;
  for (u8 bits = static_cast<u8>(mask); bits != 0; bits &= bits - 1) ++n;
  return n;
}

inline constexpr Side kAllSides =
    Side::kLeft | Side::kRight | Side::kTop | Side::kBottom;

/// Maps a possibly out-of-bounds 1-D coordinate into [0, size) for the
/// non-Constant patterns. `size` must be positive. Handles coordinates
/// arbitrarily far out of bounds (windows larger than the image).
///
/// - Clamp:  ... -2 -1 | 0 1 2 ... s-1 | s s+1 ...  ->  0 0 | 0 1 2 .. | s-1
/// - Mirror: -1 -> 0, -2 -> 1, s -> s-1 (edge included; OpenCV
///   BORDER_REFLECT), periodic with period 2*size for far coordinates.
/// - Repeat: coordinate mod size (mathematical modulo).
[[nodiscard]] i32 map_index(BorderPattern pattern, i32 coord, i32 size);

/// Per-axis mapping convenience: maps (x, y) into bounds.
[[nodiscard]] Index2 map_index_2d(BorderPattern pattern, Index2 p, Size2 size);

/// Reads pixel (x, y) from `img` under `pattern`, resolving out-of-bounds
/// coordinates; for Constant, returns `constant` when (x, y) is OOB.
template <typename ImageT>
[[nodiscard]] auto border_read(const ImageT& img, BorderPattern pattern, i32 x,
                               i32 y, typename ImageT::value_type constant);

/// True when `pattern` needs a bounded number of operations per check (Clamp,
/// Mirror, Constant). Repeat uses a data-dependent while loop (Listing 1) and
/// is flagged false; the analytic model charges it a higher per-check cost.
[[nodiscard]] constexpr bool has_constant_check_cost(BorderPattern p) {
  return p != BorderPattern::kRepeat;
}

/// Estimated scalar instructions to check-and-remap ONE side for one access,
/// used by the analytic model (n_check in Eq. (3)). Derived from Listing 1:
/// Clamp/Mirror need a compare + select (+ arithmetic for Mirror), Repeat a
/// compare + add per loop trip, Constant a compare + predicated select.
[[nodiscard]] i32 check_cost_per_side(BorderPattern p);

}  // namespace ispb

// ---- template definitions -------------------------------------------------

namespace ispb {

template <typename ImageT>
auto border_read(const ImageT& img, BorderPattern pattern, i32 x, i32 y,
                 typename ImageT::value_type constant) {
  if (pattern == BorderPattern::kConstant) {
    if (x < 0 || x >= img.width() || y < 0 || y >= img.height()) {
      return constant;
    }
    return img(x, y);
  }
  const i32 mx = map_index(pattern, x, img.width());
  const i32 my = map_index(pattern, y, img.height());
  return img(mx, my);
}

}  // namespace ispb

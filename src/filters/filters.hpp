// The five evaluation applications (paper Section VI), implemented as DSL
// kernels: Gaussian, Laplace, Bilateral, Sobel (3 kernels) and the Night
// filter (5 kernels: 4 Atrous wavelet passes + tone mapping).
//
// Each filter exposes (a) a StencilSpec factory for benches that drive the
// compiler directly and (b) a convenience runner executing on either
// backend. Window sizes follow the paper: Gaussian 3x3, Laplace 5x5,
// Bilateral 13x13, Sobel 3x3, Night 3/5/9/17.
#pragma once

#include <vector>

#include "dsl/hipacc.hpp"

namespace ispb::filters {

/// Normalized binomial Gaussian coefficients (odd size).
[[nodiscard]] dsl::Mask gaussian_mask(i32 size);

/// Laplacian-of-box mask (all -1 with a positive center), odd size.
[[nodiscard]] dsl::Mask laplace_mask(i32 size);

/// Sobel derivative masks.
[[nodiscard]] dsl::Mask sobel_mask_x();
[[nodiscard]] dsl::Mask sobel_mask_y();

// ---- StencilSpec factories (compiler-facing) --------------------------------

[[nodiscard]] codegen::StencilSpec gaussian_spec(i32 size = 3);
[[nodiscard]] codegen::StencilSpec laplace_spec(i32 size = 5);
[[nodiscard]] codegen::StencilSpec bilateral_spec(i32 size = 13,
                                                  f32 sigma_d = 3.0f,
                                                  f32 sigma_r = 16.0f);
[[nodiscard]] codegen::StencilSpec sobel_dx_spec();
[[nodiscard]] codegen::StencilSpec sobel_dy_spec();
[[nodiscard]] codegen::StencilSpec sobel_magnitude_spec();  // 2 inputs, point op
/// One Atrous (with-holes) wavelet pass: a sparse 5x5-tap pattern dilated to
/// the given window size (3, 5, 9, 17 in the Night filter).
[[nodiscard]] codegen::StencilSpec atrous_spec(i32 window);
[[nodiscard]] codegen::StencilSpec tonemap_spec();  // point op

/// A named single-kernel application for sweep benches.
struct FilterApp {
  std::string name;
  codegen::StencilSpec spec;
};

/// The paper's five applications flattened to their component kernels,
/// in execution order (Sobel and Night contribute several kernels).
struct MultiKernelApp {
  std::string name;
  /// Kernels with the index of the image each input reads: 0 is the source
  /// image, k>0 is the output of kernel k-1.
  struct Stage {
    codegen::StencilSpec spec;
    std::vector<i32> input_bindings;
  };
  std::vector<Stage> stages;
};

[[nodiscard]] MultiKernelApp make_gaussian_app();
[[nodiscard]] MultiKernelApp make_laplace_app();
[[nodiscard]] MultiKernelApp make_bilateral_app();
[[nodiscard]] MultiKernelApp make_sobel_app();
[[nodiscard]] MultiKernelApp make_night_app();

/// All five, in the paper's order.
[[nodiscard]] std::vector<MultiKernelApp> all_apps();

/// Runs a multi-kernel app on the CPU reference backend.
[[nodiscard]] Image<f32> run_app_reference(const MultiKernelApp& app,
                                           const Image<f32>& source,
                                           BorderPattern pattern,
                                           f32 constant = 0.0f);

/// Configuration for running a multi-kernel app on the simulator.
struct AppSimConfig {
  sim::DeviceSpec device = sim::make_gtx680();
  BlockSize block{32, 4};
  codegen::Variant variant = codegen::Variant::kIsp;
  bool use_model = false;  ///< isp+m per stage
  bool sampled = false;    ///< timing-only sampled launches
  BorderPattern pattern = BorderPattern::kClamp;
  f32 constant = 0.0f;
};

/// Per-stage outcome of a simulated pipeline run.
struct AppSimResult {
  Image<f32> output;
  f64 total_time_ms = 0.0;
  struct Stage {
    std::string kernel;
    codegen::Variant variant_used = codegen::Variant::kNaive;
    i32 regs_per_thread = 0;  ///< allocator estimate for the kernel run
    sim::LaunchStats stats;
  };
  std::vector<Stage> stages;
};

/// Runs every stage of `app` on the simulator, chaining intermediate images
/// and applying the model-driven variant selection per stage when requested.
[[nodiscard]] AppSimResult run_app_simulated(const MultiKernelApp& app,
                                             const Image<f32>& source,
                                             const AppSimConfig& config);

}  // namespace ispb::filters

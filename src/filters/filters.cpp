#include "filters/filters.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dsl/compile.hpp"
#include "pipeline/kernel_cache.hpp"

namespace ispb::filters {

using dsl::Accessor;
using dsl::BoundaryCondition;
using dsl::Domain;
using dsl::IterationSpace;
using dsl::Mask;
using dsl::Reduce;
using dsl::Value;

// ---- masks ------------------------------------------------------------------

Mask gaussian_mask(i32 size) {
  ISPB_EXPECTS(size >= 1 && size % 2 == 1);
  // Binomial coefficients approximate a Gaussian and sum to a power of two.
  std::vector<f64> row(static_cast<std::size_t>(size), 0.0);
  row[0] = 1.0;
  for (i32 n = 1; n < size; ++n) {
    for (i32 k = n; k > 0; --k) {
      row[static_cast<std::size_t>(k)] += row[static_cast<std::size_t>(k - 1)];
    }
  }
  f64 sum = 0.0;
  for (f64 v : row) sum += v;

  Mask mask(size, size);
  const i32 r = size / 2;
  for (i32 dy = -r; dy <= r; ++dy) {
    for (i32 dx = -r; dx <= r; ++dx) {
      const f64 c = row[static_cast<std::size_t>(dx + r)] *
                    row[static_cast<std::size_t>(dy + r)] / (sum * sum);
      mask.at(dx, dy) = static_cast<f32>(c);
    }
  }
  return mask;
}

Mask laplace_mask(i32 size) {
  ISPB_EXPECTS(size >= 3 && size % 2 == 1);
  Mask mask(size, size);
  const i32 r = size / 2;
  for (i32 dy = -r; dy <= r; ++dy) {
    for (i32 dx = -r; dx <= r; ++dx) mask.at(dx, dy) = -1.0f;
  }
  mask.at(0, 0) = static_cast<f32>(size) * static_cast<f32>(size) - 1.0f;
  return mask;
}

Mask sobel_mask_x() {
  return Mask{{-1.0f, 0.0f, 1.0f}, {-2.0f, 0.0f, 2.0f}, {-1.0f, 0.0f, 1.0f}};
}

Mask sobel_mask_y() {
  return Mask{{-1.0f, -2.0f, -1.0f}, {0.0f, 0.0f, 0.0f}, {1.0f, 2.0f, 1.0f}};
}

// ---- DSL kernels ------------------------------------------------------------

namespace {

/// Generic convolution kernel (Gaussian, Laplace, Sobel derivatives, Atrous).
class ConvolutionKernel : public dsl::Kernel {
 public:
  ConvolutionKernel(IterationSpace& is, Accessor& in, Mask& mask, Domain& dom,
                    std::string name)
      : Kernel(is, std::move(name)), in_(in), mask_(mask), dom_(dom) {
    add_accessor(&in_);
  }

  void kernel() override {
    output() = convolve(mask_, dom_, Reduce::kSum,
                        [&] { return mask_(dom_) * in_(dom_); });
  }

 private:
  Accessor& in_;
  Mask& mask_;
  Domain& dom_;
};

/// Edge-preserving bilateral filter (paper Section IV-A1): spatial closeness
/// from the precomputed mask, range similarity via exp on the intensity
/// difference to the window center.
class BilateralKernel : public dsl::Kernel {
 public:
  BilateralKernel(IterationSpace& is, Accessor& in, Mask& closeness,
                  Domain& dom, f32 sigma_r)
      : Kernel(is, "bilateral"),
        in_(in),
        closeness_(closeness),
        dom_(dom),
        inv_two_sigma_r2_(1.0f / (2.0f * sigma_r * sigma_r)) {
    add_accessor(&in_);
  }

  void kernel() override {
    const Value center = in_(0, 0);
    Value weight_sum = 0.0f;
    Value pixel_sum = 0.0f;
    dsl::iterate(dom_, [&] {
      const Value diff = in_(dom_) - center;
      const Value weight =
          dsl::exp(diff * diff * Value(-inv_two_sigma_r2_)) *
          closeness_(dom_);
      weight_sum += weight;
      pixel_sum += weight * in_(dom_);
    });
    output() = pixel_sum / weight_sum;
  }

 private:
  Accessor& in_;
  Mask& closeness_;
  Domain& dom_;
  f32 inv_two_sigma_r2_;
};

/// Gradient magnitude from two precomputed derivative images (point op).
class MagnitudeKernel : public dsl::Kernel {
 public:
  MagnitudeKernel(IterationSpace& is, Accessor& gx, Accessor& gy)
      : Kernel(is, "sobel_magnitude"), gx_(gx), gy_(gy) {
    add_accessor(&gx_);
    add_accessor(&gy_);
  }

  void kernel() override {
    const Value x = gx_();
    const Value y = gy_();
    output() = dsl::sqrt(x * x + y * y);
  }

 private:
  Accessor& gx_;
  Accessor& gy_;
};

/// Reinhard-style global tone mapping (point op).
class TonemapKernel : public dsl::Kernel {
 public:
  TonemapKernel(IterationSpace& is, Accessor& in)
      : Kernel(is, "tonemap"), in_(in) {
    add_accessor(&in_);
  }

  void kernel() override {
    const Value v = dsl::max(in_(), Value(0.0f));
    output() = v / (v + 96.0f) * 350.0f;
  }

 private:
  Accessor& in_;
};

/// Traces a single-input convolution into a spec.
codegen::StencilSpec trace_convolution(Mask mask, Domain dom,
                                       const std::string& name) {
  Image<f32> dummy(1, 1);
  Image<f32> out(1, 1);
  const BoundaryCondition bc(dummy, mask, BorderPattern::kClamp);
  Accessor acc(bc);
  IterationSpace is(out);
  ConvolutionKernel k(is, acc, mask, dom, name);
  return k.trace();
}

}  // namespace

// ---- spec factories -----------------------------------------------------------

codegen::StencilSpec gaussian_spec(i32 size) {
  Mask mask = gaussian_mask(size);
  Domain dom(mask);
  return trace_convolution(std::move(mask), std::move(dom),
                           "gaussian" + std::to_string(size));
}

codegen::StencilSpec laplace_spec(i32 size) {
  Mask mask = laplace_mask(size);
  Domain dom(mask);
  return trace_convolution(std::move(mask), std::move(dom),
                           "laplace" + std::to_string(size));
}

codegen::StencilSpec bilateral_spec(i32 size, f32 sigma_d, f32 sigma_r) {
  ISPB_EXPECTS(size >= 3 && size % 2 == 1);
  // Spatial closeness coefficients.
  Mask closeness(size, size);
  const i32 r = size / 2;
  for (i32 dy = -r; dy <= r; ++dy) {
    for (i32 dx = -r; dx <= r; ++dx) {
      const f64 d2 = static_cast<f64>(dx) * dx + static_cast<f64>(dy) * dy;
      closeness.at(dx, dy) = static_cast<f32>(
          std::exp(-d2 / (2.0 * static_cast<f64>(sigma_d) *
                          static_cast<f64>(sigma_d))));
    }
  }
  Domain dom(closeness);

  Image<f32> dummy(1, 1);
  Image<f32> out(1, 1);
  const BoundaryCondition bc(dummy, closeness, BorderPattern::kClamp);
  Accessor acc(bc);
  IterationSpace is(out);
  BilateralKernel k(is, acc, closeness, dom, sigma_r);
  codegen::StencilSpec spec = k.trace();
  spec.name = "bilateral" + std::to_string(size);
  return spec;
}

codegen::StencilSpec sobel_dx_spec() {
  Mask mask = sobel_mask_x();
  Domain dom(mask);
  // The zero column contributes nothing; a sparse domain skips it (paper
  // future-work extension put to use).
  for (i32 dy = -1; dy <= 1; ++dy) dom.disable(0, dy);
  return trace_convolution(std::move(mask), std::move(dom), "sobel_dx");
}

codegen::StencilSpec sobel_dy_spec() {
  Mask mask = sobel_mask_y();
  Domain dom(mask);
  for (i32 dx = -1; dx <= 1; ++dx) dom.disable(dx, 0);
  return trace_convolution(std::move(mask), std::move(dom), "sobel_dy");
}

codegen::StencilSpec sobel_magnitude_spec() {
  Image<f32> dummy_x(1, 1);
  Image<f32> dummy_y(1, 1);
  Image<f32> out(1, 1);
  Accessor gx(dummy_x);
  Accessor gy(dummy_y);
  IterationSpace is(out);
  MagnitudeKernel k(is, gx, gy);
  return k.trace();
}

codegen::StencilSpec atrous_spec(i32 window) {
  ISPB_EXPECTS(window >= 3 && window % 2 == 1);
  const i32 dilation = window / 2;
  // 3x3 B-spline taps {1,2,1}x{1,2,1}/16 dilated "with holes".
  Mask mask(window, window);
  Domain dom(window, window);
  for (i32 dy = -dilation; dy <= dilation; ++dy) {
    for (i32 dx = -dilation; dx <= dilation; ++dx) {
      dom.disable(dx, dy);
    }
  }
  static constexpr f32 kTap[3] = {1.0f / 4.0f, 2.0f / 4.0f, 1.0f / 4.0f};
  for (i32 j = -1; j <= 1; ++j) {
    for (i32 i = -1; i <= 1; ++i) {
      const i32 dx = i * dilation;
      const i32 dy = j * dilation;
      mask.at(dx, dy) = kTap[i + 1] * kTap[j + 1];
      dom.enable(dx, dy);
    }
  }
  return trace_convolution(std::move(mask), std::move(dom),
                           "atrous" + std::to_string(window));
}

codegen::StencilSpec tonemap_spec() {
  Image<f32> dummy(1, 1);
  Image<f32> out(1, 1);
  Accessor acc(dummy);
  IterationSpace is(out);
  TonemapKernel k(is, acc);
  return k.trace();
}

// ---- applications -------------------------------------------------------------

MultiKernelApp make_gaussian_app() {
  return MultiKernelApp{"gaussian", {{gaussian_spec(3), {0}}}};
}

MultiKernelApp make_laplace_app() {
  return MultiKernelApp{"laplace", {{laplace_spec(5), {0}}}};
}

MultiKernelApp make_bilateral_app() {
  return MultiKernelApp{"bilateral", {{bilateral_spec(13), {0}}}};
}

MultiKernelApp make_sobel_app() {
  MultiKernelApp app;
  app.name = "sobel";
  app.stages.push_back({sobel_dx_spec(), {0}});
  app.stages.push_back({sobel_dy_spec(), {0}});
  app.stages.push_back({sobel_magnitude_spec(), {1, 2}});
  return app;
}

MultiKernelApp make_night_app() {
  MultiKernelApp app;
  app.name = "night";
  app.stages.push_back({atrous_spec(3), {0}});
  app.stages.push_back({atrous_spec(5), {1}});
  app.stages.push_back({atrous_spec(9), {2}});
  app.stages.push_back({atrous_spec(17), {3}});
  app.stages.push_back({tonemap_spec(), {4}});
  return app;
}

std::vector<MultiKernelApp> all_apps() {
  std::vector<MultiKernelApp> apps;
  apps.push_back(make_gaussian_app());
  apps.push_back(make_laplace_app());
  apps.push_back(make_bilateral_app());
  apps.push_back(make_sobel_app());
  apps.push_back(make_night_app());
  return apps;
}

Image<f32> run_app_reference(const MultiKernelApp& app,
                             const Image<f32>& source, BorderPattern pattern,
                             f32 constant) {
  ISPB_EXPECTS(!app.stages.empty());
  std::vector<Image<f32>> images;
  images.push_back(source);  // index 0 = source; index k = stage k-1 output
  for (const auto& stage : app.stages) {
    std::vector<const Image<f32>*> inputs;
    inputs.reserve(stage.input_bindings.size());
    for (i32 binding : stage.input_bindings) {
      ISPB_EXPECTS(binding >= 0 &&
                   binding < static_cast<i32>(images.size()));
      inputs.push_back(&images[static_cast<std::size_t>(binding)]);
    }
    images.push_back(dsl::run_reference(stage.spec, pattern, constant, inputs));
  }
  return std::move(images.back());
}

AppSimResult run_app_simulated(const MultiKernelApp& app,
                               const Image<f32>& source,
                               const AppSimConfig& config) {
  ISPB_EXPECTS(!app.stages.empty());
  AppSimResult result;
  std::vector<Image<f32>> images;
  images.push_back(source);

  for (const auto& stage : app.stages) {
    codegen::Variant variant = config.variant;
    if (config.use_model) {
      const dsl::PlanDecision plan = dsl::plan_variant(
          config.device, stage.spec, source.size(), config.block,
          config.pattern, config.variant == codegen::Variant::kIspWarp);
      variant = plan.variant;
    }
    codegen::CodegenOptions options;
    options.pattern = config.pattern;
    options.variant = variant;
    options.border_constant = config.constant;
    // Tiled staging is specialized to the launch block shape.
    options.tile_block = config.block;
    // Identical (spec, options) compiles happen once per process: every
    // pipeline run in the repo funnels through the shared kernel cache.
    const pipeline::KernelCache::KernelPtr kernel =
        pipeline::KernelCache::global().get_or_compile(stage.spec, options,
                                                       config.device.name);

    std::vector<const Image<f32>*> inputs;
    inputs.reserve(stage.input_bindings.size());
    for (i32 binding : stage.input_bindings) {
      ISPB_EXPECTS(binding >= 0 && binding < static_cast<i32>(images.size()));
      inputs.push_back(&images[static_cast<std::size_t>(binding)]);
    }
    Image<f32> out(source.size());
    const dsl::SimRun run =
        dsl::launch_on_sim(config.device, *kernel, inputs, out, config.block,
                           config.sampled);
    result.total_time_ms += run.stats.time_ms;
    result.stages.push_back(AppSimResult::Stage{
        stage.spec.name, run.variant_used, kernel->regs_per_thread, run.stats});
    images.push_back(std::move(out));
  }
  result.output = std::move(images.back());
  return result;
}

}  // namespace ispb::filters

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ispb {

f64 geometric_mean(std::span<const f64> values) {
  if (values.empty()) return 1.0;
  f64 log_sum = 0.0;
  for (f64 v : values) {
    ISPB_EXPECTS(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<f64>(values.size()));
}

f64 mean(std::span<const f64> values) {
  if (values.empty()) return 0.0;
  f64 sum = 0.0;
  for (f64 v : values) sum += v;
  return sum / static_cast<f64>(values.size());
}

f64 stddev(std::span<const f64> values) {
  if (values.size() < 2) return 0.0;
  const f64 m = mean(values);
  f64 acc = 0.0;
  for (f64 v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<f64>(values.size() - 1));
}

f64 pearson(std::span<const f64> xs, std::span<const f64> ys) {
  ISPB_EXPECTS(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const f64 mx = mean(xs);
  const f64 my = mean(ys);
  f64 sxy = 0.0;
  f64 sxx = 0.0;
  f64 syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const f64 dx = xs[i] - mx;
    const f64 dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

f64 median(std::span<const f64> values) {
  ISPB_EXPECTS(!values.empty());
  std::vector<f64> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  const f64 hi = copy[mid];
  if (copy.size() % 2 == 1) return hi;
  const f64 lo =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

f64 percentile(std::span<const f64> values, f64 p) {
  ISPB_EXPECTS(p >= 0.0 && p <= 100.0);
  ISPB_EXPECTS(!values.empty());
  std::vector<f64> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const f64 pos = p / 100.0 * static_cast<f64>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const f64 frac = pos - static_cast<f64>(lo);
  return copy[lo] + (copy[hi] - copy[lo]) * frac;
}

std::optional<f64> try_median(std::span<const f64> values) {
  if (values.empty()) return std::nullopt;
  return median(values);
}

std::optional<f64> try_percentile(std::span<const f64> values, f64 p) {
  if (values.empty()) return std::nullopt;
  return percentile(values, p);
}

Summary summarize(std::span<const f64> values) {
  Summary s;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.mean = mean(values);
  s.median = median(values);
  return s;
}

}  // namespace ispb

#include "common/cli.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace ispb {

Cli::Cli(int argc, const char* const* argv) {
  ISPB_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean flag
    }
  }
}

Cli& Cli::option(const std::string& name, const std::string& help_text) {
  declared_.emplace_back(name, help_text);
  return *this;
}

bool Cli::finish() {
  declared_.emplace_back("help", "print this help and exit");
  for (const auto& [name, value] : values_) {
    const bool known =
        std::any_of(declared_.begin(), declared_.end(),
                    [&](const auto& d) { return d.first == name; });
    if (!known) {
      throw IoError("unknown option --" + name + " (see --help)");
    }
    (void)value;
  }
  return get_flag("help");
}

std::string Cli::help() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  for (const auto& [name, text] : declared_) {
    os << "  --" << name << "\t" << text << '\n';
  }
  return os.str();
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

i64 Cli::get_int(const std::string& name, i64 fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw IoError("option --" + name + " expects an integer, got '" +
                  it->second + "'");
  }
}

f64 Cli::get_double(const std::string& name, f64 fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw IoError("option --" + name + " expects a number, got '" +
                  it->second + "'");
  }
}

bool Cli::get_flag(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ispb

// A small work-stealing-free thread pool with a parallel_for helper.
//
// The CPU reference backend and the GPU simulator both parallelize over
// independent tiles/threadblocks. A shared pool avoids thread churn and keeps
// determinism: tasks never communicate, so scheduling order cannot change
// results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ispb {

/// Fixed-size thread pool executing fire-and-forget tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions would otherwise
  /// terminate a worker. Use `parallel_for` for exception-safe loops.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Process-wide pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `body(i)` for i in [begin, end) across the global pool, splitting the
/// range into contiguous chunks. Rethrows the first exception thrown by any
/// chunk. Falls back to a serial loop for tiny ranges or a 1-thread pool.
void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& body,
                  i64 grain = 1);

}  // namespace ispb

// Deterministic pseudo-random number generation.
//
// Every randomized component (image generators, property tests, fuzzing of IR
// programs) takes an explicit seed so that results are reproducible run to
// run — a requirement for a benchmark harness whose outputs are compared
// against published tables.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ispb {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-typed). High quality, tiny state, and — unlike
/// std::mt19937 — identical output across standard library implementations.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    u64 z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      u64 s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
      word = s ^ (s >> 31);
    }
  }

  /// Uniform 64-bit word.
  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform u32.
  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform integer in [lo, hi] (inclusive). Debiased via rejection.
  i32 uniform_i32(i32 lo, i32 hi) {
    ISPB_EXPECTS(lo <= hi);
    const u64 range = static_cast<u64>(static_cast<i64>(hi) - lo) + 1;
    const u64 limit = std::numeric_limits<u64>::max() -
                      std::numeric_limits<u64>::max() % range;
    u64 v = next_u64();
    while (v >= limit) v = next_u64();
    return static_cast<i32>(static_cast<i64>(lo) + static_cast<i64>(v % range));
  }

  /// Uniform float in [0, 1).
  f32 uniform_f32() {
    return static_cast<f32>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  f32 uniform_f32(f32 lo, f32 hi) {
    ISPB_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform_f32();
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(f32 p) { return uniform_f32() < p; }

  /// Uniform double in [0, 1) with 53-bit resolution.
  f64 uniform_f64() {
    return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponential inter-arrival time with the given rate (mean 1/rate) —
  /// the building block of an open-loop Poisson arrival process. Uses
  /// -ln(1-u) so u=0 maps to 0, never to infinity.
  f64 exponential(f64 rate) {
    ISPB_EXPECTS(rate > 0.0);
    return -std::log1p(-uniform_f64()) / rate;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

}  // namespace ispb

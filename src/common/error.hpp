// Error handling: contract checks and exception types.
//
// Following the C++ Core Guidelines (I.6/E.12 family) we make preconditions
// explicit and fail loudly. Contract violations throw `ContractError` so unit
// tests can assert on them without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace ispb {

/// Thrown when a precondition/postcondition/invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed external input (files, CLI arguments).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a generated IR program fails verification.
class VerifyError : public std::logic_error {
 public:
  explicit VerifyError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* cond,
                                const char* file, int line);
}  // namespace detail

}  // namespace ispb

/// Precondition check. Always on (the cost is irrelevant next to the
/// simulator's work, and silent corruption would invalidate every result).
#define ISPB_EXPECTS(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ispb::detail::contract_fail("Precondition", #cond, __FILE__,     \
                                    __LINE__);                           \
  } while (false)

/// Postcondition check.
#define ISPB_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ispb::detail::contract_fail("Postcondition", #cond, __FILE__,    \
                                    __LINE__);                           \
  } while (false)

/// Internal invariant check.
#define ISPB_ASSERT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ispb::detail::contract_fail("Invariant", #cond, __FILE__,        \
                                    __LINE__);                           \
  } while (false)

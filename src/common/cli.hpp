// Minimal command-line parsing for bench and example binaries.
//
// Supports `--name=value`, `--name value` and boolean `--flag` forms; unknown
// options are an error so that typos in sweep scripts fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ispb {

/// Parsed command line with typed accessors and defaults.
class Cli {
 public:
  /// Parses argv. Throws IoError on malformed input.
  Cli(int argc, const char* const* argv);

  /// Declares an option (for --help output and unknown-option checking).
  /// Returns *this for chaining. Must be called before the getters.
  Cli& option(const std::string& name, const std::string& help);

  /// Validates that every given option was declared. Throws IoError
  /// otherwise. Returns true if --help was requested (caller should print
  /// `help()` and exit).
  [[nodiscard]] bool finish();

  [[nodiscard]] std::string help() const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] i64 get_int(const std::string& name, i64 fallback) const;
  [[nodiscard]] f64 get_double(const std::string& name, f64 fallback) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional arguments (non --option tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

}  // namespace ispb

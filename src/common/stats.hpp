// Summary statistics used by the benchmark harness:
// geometric mean (Table IV) and Pearson correlation (Table III).
//
// Order-statistic functions (median / percentile) have no meaningful value
// on empty input, and the old silent 0.0 return could masquerade as a real
// 0 ms latency in serving reports. They now require non-empty input
// (ContractError otherwise); callers that may legitimately see an empty
// series use the try_* variants and decide how to render "no data".
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ispb {

/// Geometric mean of strictly positive values. Empty input -> 1.0.
[[nodiscard]] f64 geometric_mean(std::span<const f64> values);

/// Arithmetic mean. Empty input -> 0.0.
[[nodiscard]] f64 mean(std::span<const f64> values);

/// Sample standard deviation (n-1 denominator). Fewer than 2 values -> 0.0.
[[nodiscard]] f64 stddev(std::span<const f64> values);

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0.0 when either series has zero variance.
[[nodiscard]] f64 pearson(std::span<const f64> xs, std::span<const f64> ys);

/// Median (of a copy; input untouched).
/// Requires non-empty input (ContractError otherwise).
[[nodiscard]] f64 median(std::span<const f64> values);

/// The p-th percentile (p in [0, 100]) with linear interpolation between
/// closest ranks (numpy's default): position p/100 * (n-1) in the sorted
/// copy. p=0 is the minimum, p=100 the maximum, p=50 matches median().
/// Single element -> that element.
/// Requires non-empty input (ContractError otherwise).
[[nodiscard]] f64 percentile(std::span<const f64> values, f64 p);

/// Empty-tolerant variants: nullopt on empty input, else as above.
[[nodiscard]] std::optional<f64> try_median(std::span<const f64> values);
[[nodiscard]] std::optional<f64> try_percentile(std::span<const f64> values,
                                                f64 p);

/// Min/max/mean/median bundle for reporting.
struct Summary {
  f64 min = 0.0;
  f64 max = 0.0;
  f64 mean = 0.0;
  f64 median = 0.0;
};
[[nodiscard]] Summary summarize(std::span<const f64> values);

}  // namespace ispb

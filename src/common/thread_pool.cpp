#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace ispb {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ISPB_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    ISPB_EXPECTS(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must neither take down the process (an exception
    // escaping a thread's start function is std::terminate) nor skip the
    // in_flight_ decrement below (wait_idle would deadlock). The pool has
    // no channel to deliver the error, so it is dropped; callers that care
    // catch inside the task — as parallel_for does.
    try {
      task();
    } catch (...) {
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& body,
                  i64 grain) {
  ISPB_EXPECTS(grain >= 1);
  if (end <= begin) return;

  ThreadPool& pool = ThreadPool::global();
  const i64 count = end - begin;
  const i64 min_parallel = grain * 2;
  if (pool.size() <= 1 || count < min_parallel) {
    for (i64 i = begin; i < end; ++i) body(i);
    return;
  }

  const i64 chunks = std::min<i64>(pool.size() * 4, count / grain);
  const i64 chunk_size = (count + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (i64 c = 0; c < chunks; ++c) {
    const i64 lo = begin + c * chunk_size;
    const i64 hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool.submit([&, lo, hi] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (i64 i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ispb

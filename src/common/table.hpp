// ASCII table rendering for benchmark output.
//
// Every bench binary prints the same row/column layout as the corresponding
// table or figure in the paper; this helper keeps the formatting uniform.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ispb {

/// Column-aligned ASCII table with a title, a header row and data rows.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator between row groups.
  void add_separator();

  /// Renders the table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 3);
  /// Formats an integer.
  static std::string num(long long v);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ispb

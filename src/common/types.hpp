// Fundamental value types shared across the ISPBorder libraries.
#pragma once

#include <cstdint>
#include <compare>
#include <ostream>

namespace ispb {

using i8  = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8  = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using f32 = float;
using f64 = double;

/// A 2-D extent (width x height). Components are signed so that window
/// arithmetic (which produces negative intermediate coordinates at the
/// image border) never mixes signedness.
struct Size2 {
  i32 x = 0;  ///< width  (extent along the fast, contiguous dimension)
  i32 y = 0;  ///< height (extent along the slow dimension)

  friend constexpr bool operator==(const Size2&, const Size2&) = default;
  [[nodiscard]] constexpr i64 area() const { return i64{x} * i64{y}; }
};

/// A 2-D index (column x, row y).
struct Index2 {
  i32 x = 0;
  i32 y = 0;

  friend constexpr bool operator==(const Index2&, const Index2&) = default;
};

/// A half-open axis-aligned rectangle [x0, x1) x [y0, y1).
struct Rect {
  i32 x0 = 0;
  i32 y0 = 0;
  i32 x1 = 0;
  i32 y1 = 0;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr i32 width() const { return x1 - x0; }
  [[nodiscard]] constexpr i32 height() const { return y1 - y0; }
  [[nodiscard]] constexpr bool empty() const { return x1 <= x0 || y1 <= y0; }
  [[nodiscard]] constexpr i64 area() const {
    return empty() ? 0 : i64{width()} * i64{height()};
  }
  [[nodiscard]] constexpr bool contains(Index2 p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }
  /// Intersection of two rectangles (possibly empty).
  [[nodiscard]] constexpr Rect intersect(const Rect& o) const {
    Rect r{x0 > o.x0 ? x0 : o.x0, y0 > o.y0 ? y0 : o.y0,
           x1 < o.x1 ? x1 : o.x1, y1 < o.y1 ? y1 : o.y1};
    if (r.empty()) return Rect{};
    return r;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Size2& s) {
  return os << s.x << 'x' << s.y;
}
inline std::ostream& operator<<(std::ostream& os, const Index2& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x0 << ',' << r.x1 << ")x[" << r.y0 << ',' << r.y1
            << ')';
}

/// Ceiling division for non-negative integers, the ubiquitous grid-size
/// computation `ceil(sx / tx)` from the paper's Eq. (7).
[[nodiscard]] constexpr i32 ceil_div(i32 a, i32 b) {
  return static_cast<i32>((static_cast<i64>(a) + b - 1) / b);
}

/// Round `a` up to the next multiple of `b` (b > 0).
[[nodiscard]] constexpr i32 round_up(i32 a, i32 b) { return ceil_div(a, b) * b; }

}  // namespace ispb

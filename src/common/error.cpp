#include "common/error.hpp"

#include <sstream>

namespace ispb::detail {

void contract_fail(const char* kind, const char* cond, const char* file,
                   int line) {
  std::ostringstream os;
  os << kind << " violated: `" << cond << "` at " << file << ':' << line;
  throw ContractError(os.str());
}

}  // namespace ispb::detail

#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace ispb {

void AsciiTable::set_header(std::vector<std::string> header) {
  ISPB_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  ISPB_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1);
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

std::string AsciiTable::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string AsciiTable::num(long long v) { return std::to_string(v); }

}  // namespace ispb

#include "ir/builder.hpp"

#include "common/error.hpp"

namespace ispb::ir {

Builder::Builder(std::string name) : name_(std::move(name)) {}

void Builder::check_not_finished() const {
  ISPB_EXPECTS(!finished_);
}

RegId Builder::add_special(std::string sname) {
  check_not_finished();
  ISPB_EXPECTS(!code_started_ && param_names_.empty());
  special_names_.push_back(std::move(sname));
  return next_reg_++;
}

RegId Builder::add_param(std::string pname) {
  check_not_finished();
  ISPB_EXPECTS(!code_started_);
  param_names_.push_back(std::move(pname));
  return next_reg_++;
}

u8 Builder::add_buffer() {
  check_not_finished();
  ISPB_EXPECTS(num_buffers_ < 255);
  return static_cast<u8>(num_buffers_++);
}

void Builder::declare_smem(u32 words) {
  check_not_finished();
  ISPB_EXPECTS(words > 0 && smem_words_ == 0);
  smem_words_ = words;
}

RegId Builder::fresh_reg() {
  check_not_finished();
  return next_reg_++;
}

RegId Builder::emit(Op op, Type type, Operand a, Operand b, Operand c) {
  check_not_finished();
  ISPB_EXPECTS(op_has_dst(op));
  code_started_ = true;
  Instr ins;
  ins.op = op;
  ins.type = type;
  ins.dst = fresh_reg();
  ins.a = a;
  ins.b = b;
  ins.c = c;
  code_.push_back(ins);
  return ins.dst;
}

void Builder::emit_to(RegId dst, Op op, Type type, Operand a, Operand b,
                      Operand c) {
  check_not_finished();
  ISPB_EXPECTS(op_has_dst(op));
  ISPB_EXPECTS(dst < next_reg_);
  code_started_ = true;
  Instr ins;
  ins.op = op;
  ins.type = type;
  ins.dst = dst;
  ins.a = a;
  ins.b = b;
  ins.c = c;
  code_.push_back(ins);
}

RegId Builder::emit_cvt(Type to, Type from, Operand a) {
  check_not_finished();
  code_started_ = true;
  Instr ins;
  ins.op = Op::kCvt;
  ins.type = to;
  ins.src_type = from;
  ins.dst = fresh_reg();
  ins.a = a;
  code_.push_back(ins);
  return ins.dst;
}

RegId Builder::emit_setp(Cmp cmp, Type operand_type, Operand a, Operand b) {
  check_not_finished();
  ISPB_EXPECTS(operand_type != Type::kPred);
  code_started_ = true;
  Instr ins;
  ins.op = Op::kSetp;
  ins.type = operand_type;
  ins.cmp = cmp;
  ins.dst = fresh_reg();
  ins.a = a;
  ins.b = b;
  code_.push_back(ins);
  return ins.dst;
}

RegId Builder::emit_selp(Type type, Operand a, Operand b, RegId pred) {
  return emit(Op::kSelp, type, a, b, Operand::r(pred));
}

RegId Builder::emit_ld(u8 buffer, RegId addr) {
  check_not_finished();
  code_started_ = true;
  Instr ins;
  ins.op = Op::kLd;
  ins.type = Type::kF32;
  ins.dst = fresh_reg();
  ins.a = Operand::r(addr);
  ins.buffer = buffer;
  code_.push_back(ins);
  return ins.dst;
}

RegId Builder::emit_smem_ld(RegId addr) {
  check_not_finished();
  ISPB_EXPECTS(smem_words_ > 0);
  code_started_ = true;
  Instr ins;
  ins.op = Op::kSmemLd;
  ins.type = Type::kF32;
  ins.dst = fresh_reg();
  ins.a = Operand::r(addr);
  code_.push_back(ins);
  return ins.dst;
}

void Builder::emit_smem_st(RegId addr, Operand value) {
  check_not_finished();
  ISPB_EXPECTS(smem_words_ > 0);
  code_started_ = true;
  Instr ins;
  ins.op = Op::kSmemSt;
  ins.type = Type::kF32;
  ins.a = Operand::r(addr);
  ins.b = value;
  code_.push_back(ins);
}

void Builder::emit_bar() {
  check_not_finished();
  ISPB_EXPECTS(smem_words_ > 0);
  code_started_ = true;
  Instr ins;
  ins.op = Op::kBar;
  code_.push_back(ins);
}

void Builder::emit_st(u8 buffer, RegId addr, Operand value) {
  check_not_finished();
  code_started_ = true;
  Instr ins;
  ins.op = Op::kSt;
  ins.type = Type::kF32;
  ins.a = Operand::r(addr);
  ins.b = value;
  ins.buffer = buffer;
  code_.push_back(ins);
}

void Builder::ret() {
  check_not_finished();
  code_started_ = true;
  Instr ins;
  ins.op = Op::kRet;
  code_.push_back(ins);
}

Builder::Label Builder::make_label() {
  check_not_finished();
  label_pc_.push_back(kUnbound);
  label_patches_.emplace_back();
  return static_cast<Label>(label_pc_.size() - 1);
}

void Builder::bind(Label l) {
  check_not_finished();
  ISPB_EXPECTS(l < label_pc_.size());
  ISPB_EXPECTS(label_pc_[l] == kUnbound);
  label_pc_[l] = static_cast<u32>(code_.size());
  code_started_ = true;
}

void Builder::br(Label l) {
  check_not_finished();
  ISPB_EXPECTS(l < label_pc_.size());
  code_started_ = true;
  Instr ins;
  ins.op = Op::kBra;
  code_.push_back(ins);
  label_patches_[l].push_back(static_cast<u32>(code_.size() - 1));
}

void Builder::br_if(RegId pred, Label l) {
  check_not_finished();
  ISPB_EXPECTS(l < label_pc_.size());
  code_started_ = true;
  Instr ins;
  ins.op = Op::kBra;
  ins.c = Operand::r(pred);
  code_.push_back(ins);
  label_patches_[l].push_back(static_cast<u32>(code_.size() - 1));
}

void Builder::br_unless(RegId pred, Label l) {
  // Flip the predicate (p XOR 1) and branch on the flipped value.
  const RegId flipped =
      emit(Op::kXor, Type::kPred, Operand::r(pred), Operand::imm_i32(1));
  br_if(flipped, l);
}

void Builder::marker(std::string mname) {
  check_not_finished();
  markers_.emplace_back(std::move(mname), static_cast<u32>(code_.size()));
}

Program Builder::finish() {
  check_not_finished();
  finished_ = true;

  Program prog;
  prog.name = name_;
  prog.num_regs = next_reg_;
  prog.special_names = special_names_;
  prog.param_names = param_names_;
  prog.num_buffers = num_buffers_;
  prog.smem_words = smem_words_;
  prog.code = code_;
  prog.markers = markers_;

  for (std::size_t l = 0; l < label_pc_.size(); ++l) {
    if (label_patches_[l].empty()) continue;
    if (label_pc_[l] == kUnbound) {
      throw ContractError("unbound label referenced in '" + name_ + "'");
    }
    ISPB_ASSERT(label_pc_[l] <= prog.code.size());
    for (u32 site : label_patches_[l]) {
      prog.code[site].target = label_pc_[l];
    }
  }

  verify(prog);
  return prog;
}

}  // namespace ispb::ir

#include "ir/inventory.hpp"

#include <algorithm>

namespace ispb::ir {

std::vector<std::pair<std::string, i64>> Inventory::nonzero() const {
  std::vector<std::pair<std::string, i64>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      out.emplace_back(std::string(op_keyword(static_cast<Op>(i))),
                       counts_[i]);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second != y.second ? x.second > y.second : x.first < y.first;
  });
  return out;
}

Inventory Inventory::scaled(f64 factor) const {
  Inventory out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.counts_[i] =
        static_cast<i64>(static_cast<f64>(counts_[i]) * factor + 0.5);
  }
  return out;
}

}  // namespace ispb::ir

#include "ir/printer.hpp"

#include <map>
#include <set>
#include <sstream>

namespace ispb::ir {

namespace {

std::string operand_str(const Operand& o, Type t) {
  std::ostringstream os;
  switch (o.kind) {
    case Operand::Kind::kNone:
      return "_";
    case Operand::Kind::kReg:
      os << "%r" << o.reg;
      return os.str();
    case Operand::Kind::kImm:
      if (t == Type::kF32) {
        os << o.imm.as_f32();
      } else {
        os << o.imm.as_i32();
      }
      return os.str();
  }
  return "?";
}

}  // namespace

std::string to_ptx(const Instr& ins) {
  std::ostringstream os;
  switch (ins.op) {
    case Op::kRet:
      os << "ret;";
      return os.str();
    case Op::kBra:
      if (ins.c.is_reg()) {
        os << "@%r" << ins.c.reg << " ";
      }
      os << "bra L" << ins.target << ";";
      return os.str();
    case Op::kLd:
      os << "ld.global.f32 %r" << ins.dst << ", [buf" << int{ins.buffer}
         << " + " << operand_str(ins.a, Type::kI32) << "];";
      return os.str();
    case Op::kSt:
      os << "st.global.f32 [buf" << int{ins.buffer} << " + "
         << operand_str(ins.a, Type::kI32) << "], "
         << operand_str(ins.b, ins.type) << ";";
      return os.str();
    case Op::kSmemLd:
      os << "ld.shared.f32 %r" << ins.dst << ", [smem + "
         << operand_str(ins.a, Type::kI32) << "];";
      return os.str();
    case Op::kSmemSt:
      os << "st.shared.f32 [smem + " << operand_str(ins.a, Type::kI32)
         << "], " << operand_str(ins.b, ins.type) << ";";
      return os.str();
    case Op::kBar:
      os << "bar.sync 0;";
      return os.str();
    case Op::kSetp:
      os << "setp." << cmp_name(ins.cmp) << type_suffix(ins.type) << " %r"
         << ins.dst << ", " << operand_str(ins.a, ins.type) << ", "
         << operand_str(ins.b, ins.type) << ";";
      return os.str();
    case Op::kCvt:
      os << "cvt" << type_suffix(ins.type) << type_suffix(ins.src_type)
         << " %r" << ins.dst << ", " << operand_str(ins.a, ins.src_type)
         << ";";
      return os.str();
    default:
      break;
  }
  os << op_keyword(ins.op) << type_suffix(ins.type) << " %r" << ins.dst;
  const i32 arity = op_arity(ins.op);
  const Type operand_type =
      ins.op == Op::kSelp ? ins.type : ins.type;
  if (arity >= 1) os << ", " << operand_str(ins.a, operand_type);
  if (arity >= 2) os << ", " << operand_str(ins.b, operand_type);
  if (arity >= 3) os << ", " << operand_str(ins.c, operand_type);
  os << ";";
  return os.str();
}

std::string to_ptx(const Program& prog) {
  std::ostringstream os;
  os << "// ptx-like listing of kernel '" << prog.name << "'\n";
  os << ".visible .entry " << prog.name << " (\n";
  for (std::size_t i = 0; i < prog.param_names.size(); ++i) {
    os << "    .param .b32 " << prog.param_names[i]
       << (i + 1 < prog.param_names.size() ? ",\n" : "\n");
  }
  os << ")\n{\n";
  os << "    .reg .b32 %r<" << prog.num_regs << ">;\n";
  if (prog.smem_words > 0) {
    os << "    .shared .align 4 .b8 smem[" << prog.smem_words * 4 << "];\n";
  }
  for (std::size_t i = 0; i < prog.special_names.size(); ++i) {
    os << "    // %r" << i << " = %" << prog.special_names[i] << "\n";
  }
  for (std::size_t i = 0; i < prog.param_names.size(); ++i) {
    os << "    // %r" << prog.num_special() + i << " = param "
       << prog.param_names[i] << "\n";
  }

  std::set<u32> label_pcs;
  for (const Instr& ins : prog.code) {
    if (ins.op == Op::kBra) label_pcs.insert(ins.target);
  }
  std::multimap<u32, std::string> marker_at;
  for (const auto& [mname, pc] : prog.markers) marker_at.emplace(pc, mname);

  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    auto [lo, hi] = marker_at.equal_range(pc);
    for (auto it = lo; it != hi; ++it) {
      os << "  // ---- region " << it->second << " ----\n";
    }
    if (label_pcs.count(pc) != 0) os << "L" << pc << ":\n";
    os << "    " << to_ptx(prog.code[pc]) << "\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ispb::ir

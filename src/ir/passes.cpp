#include "ir/passes.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ispb::ir {

namespace {

/// Number of in-code definitions per register (inputs are defined by the
/// launcher and count as one definition each).
std::vector<u32> def_counts(const Program& prog) {
  std::vector<u32> counts(prog.num_regs, 0);
  for (u32 r = 0; r < prog.num_inputs(); ++r) counts[r] = 1;
  for (const Instr& ins : prog.code) {
    if (op_has_dst(ins.op)) ++counts[ins.dst];
  }
  return counts;
}

bool single_def(const std::vector<u32>& counts, const Operand& o) {
  return !o.is_reg() || counts[o.reg] == 1;
}

/// Basic-block leader flags: pc 0, branch targets, and fallthrough points
/// after branches/rets start new blocks.
std::vector<bool> block_leaders(const Program& prog) {
  std::vector<bool> leader(prog.code.size(), false);
  if (!leader.empty()) leader[0] = true;
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    if (ins.op == Op::kBra) {
      if (ins.target < leader.size()) leader[ins.target] = true;
      if (pc + 1 < leader.size()) leader[pc + 1] = true;
    } else if (ins.op == Op::kRet && pc + 1 < leader.size()) {
      leader[pc + 1] = true;
    }
  }
  return leader;
}

bool is_commutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kMin:
    case Op::kMax:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return true;
    default:
      return false;
  }
}

bool is_pure_value_op(Op op) {
  switch (op) {
    case Op::kSt:
    case Op::kBra:
    case Op::kRet:
    case Op::kLd:
    case Op::kSmemLd:
    case Op::kSmemSt:
    case Op::kBar:
      return false;
    default:
      return true;
  }
}

Instr make_mov(RegId dst, Type type, Operand src) {
  Instr mov;
  mov.op = Op::kMov;
  mov.type = type;
  mov.dst = dst;
  mov.a = src;
  return mov;
}

}  // namespace

PassStats constant_fold(Program& prog) {
  PassStats stats;
  for (Instr& ins : prog.code) {
    if (!is_pure_value_op(ins.op) || ins.op == Op::kMov) continue;
    const i32 arity = op_arity(ins.op);

    const bool all_imm = (arity < 1 || ins.a.is_imm()) &&
                         (arity < 2 || ins.b.is_imm()) &&
                         (arity < 3 || ins.c.is_imm());
    if (all_imm) {
      const Word folded = eval_pure(ins, ins.a.imm, ins.b.imm, ins.c.imm);
      const Type result_type =
          ins.op == Op::kSetp ? Type::kPred : ins.type;
      ins = make_mov(ins.dst, result_type,
                     Operand{Operand::Kind::kImm, kNoReg, folded});
      ++stats.folded;
      continue;
    }

    // Exactly value-preserving algebraic identities.
    const bool i32_type = ins.type == Type::kI32;
    const auto imm_is = [](const Operand& o, i32 v) {
      return o.is_imm() && o.imm.as_i32() == v;
    };
    const auto fimm_is = [](const Operand& o, f32 v) {
      return o.is_imm() && o.imm.as_f32() == v;
    };
    switch (ins.op) {
      case Op::kAdd:
        if (i32_type && imm_is(ins.b, 0)) {
          ins = make_mov(ins.dst, ins.type, ins.a);
          ++stats.folded;
        } else if (i32_type && imm_is(ins.a, 0)) {
          ins = make_mov(ins.dst, ins.type, ins.b);
          ++stats.folded;
        }
        break;
      case Op::kSub:
        if (i32_type && imm_is(ins.b, 0)) {
          ins = make_mov(ins.dst, ins.type, ins.a);
          ++stats.folded;
        }
        break;
      case Op::kMul:
        if ((i32_type && imm_is(ins.b, 1)) ||
            (!i32_type && fimm_is(ins.b, 1.0f))) {
          ins = make_mov(ins.dst, ins.type, ins.a);
          ++stats.folded;
        } else if ((i32_type && imm_is(ins.a, 1)) ||
                   (!i32_type && fimm_is(ins.a, 1.0f))) {
          ins = make_mov(ins.dst, ins.type, ins.b);
          ++stats.folded;
        } else if (i32_type && (imm_is(ins.a, 0) || imm_is(ins.b, 0))) {
          // Integer only: 0.0f * x is not 0 for NaN/inf inputs.
          ins = make_mov(ins.dst, ins.type, Operand::imm_i32(0));
          ++stats.folded;
        }
        break;
      case Op::kMad:
        // a*b + c with b == 1 -> add a, c (shape-preserving strength cut).
        if (i32_type && imm_is(ins.a, 0)) {
          Instr add = ins;
          add.op = Op::kMov;
          add.a = ins.c;
          add.b = Operand::none();
          add.c = Operand::none();
          ins = add;
          ++stats.folded;
        }
        break;
      case Op::kShl:
      case Op::kShr:
        if (imm_is(ins.b, 0)) {
          ins = make_mov(ins.dst, ins.type, ins.a);
          ++stats.folded;
        }
        break;
      case Op::kSelp:
        if (ins.a == ins.b) {
          ins = make_mov(ins.dst, ins.type, ins.a);
          ++stats.folded;
        }
        break;
      default:
        break;
    }
  }
  return stats;
}

PassStats copy_propagate(Program& prog) {
  PassStats stats;
  const std::vector<u32> defs = def_counts(prog);

  // Map: register -> replacement operand, for single-def movs whose source
  // is an immediate or a single-def register.
  std::vector<Operand> replacement(prog.num_regs, Operand::none());
  for (const Instr& ins : prog.code) {
    if (ins.op != Op::kMov || defs[ins.dst] != 1) continue;
    if (ins.a.is_imm() || single_def(defs, ins.a)) {
      replacement[ins.dst] = ins.a;
    }
  }
  // Resolve chains (mov b<-a; mov c<-b).
  for (u32 r = 0; r < prog.num_regs; ++r) {
    Operand o = replacement[r];
    int depth = 0;
    while (o.is_reg() && !replacement[o.reg].is_none() && depth++ < 64) {
      o = replacement[o.reg];
    }
    replacement[r] = o;
  }

  const auto rewrite = [&](Operand& o) {
    if (o.is_reg() && !replacement[o.reg].is_none()) {
      o = replacement[o.reg];
      ++stats.propagated;
    }
  };
  for (Instr& ins : prog.code) {
    const i32 arity = op_arity(ins.op);
    // Memory addresses must stay registers; skip rewriting `a` of ld/st to
    // an immediate (cannot happen for well-formed programs, but stay safe).
    const bool is_mem = ins.op == Op::kLd || ins.op == Op::kSt ||
                        ins.op == Op::kSmemLd || ins.op == Op::kSmemSt;
    if (arity >= 1 && !is_mem) {
      rewrite(ins.a);
    } else if (is_mem && ins.a.is_reg() && replacement[ins.a.reg].is_reg()) {
      ins.a = replacement[ins.a.reg];
      ++stats.propagated;
    }
    if (arity >= 2) rewrite(ins.b);
    if (arity >= 3 && ins.op != Op::kSelp) rewrite(ins.c);
    if (ins.op == Op::kSelp && ins.c.is_reg() &&
        replacement[ins.c.reg].is_reg()) {
      ins.c = replacement[ins.c.reg];  // predicates must remain registers
      ++stats.propagated;
    }
    if (ins.op == Op::kBra && ins.c.is_reg() &&
        replacement[ins.c.reg].is_reg()) {
      ins.c = replacement[ins.c.reg];
      ++stats.propagated;
    }
  }
  return stats;
}

PassStats local_cse(Program& prog) {
  PassStats stats;
  const std::vector<u32> defs = def_counts(prog);
  const std::vector<bool> leaders = block_leaders(prog);

  // Value-number key: opcode + types + cmp + buffer + canonical operands +
  // load epoch (loads are invalidated by stores to the same buffer).
  using OperandKey = std::tuple<u8, u32, u32>;
  using Key = std::tuple<u8, u8, u8, u8, u8, u32, OperandKey, OperandKey,
                         OperandKey>;
  const auto okey = [](const Operand& o) {
    return OperandKey{static_cast<u8>(o.kind), o.reg, o.imm.bits};
  };

  std::map<Key, RegId> table;
  std::vector<u32> store_epoch(prog.num_buffers, 0);
  u32 smem_epoch = 0;

  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    if (leaders[pc]) {
      table.clear();
      std::fill(store_epoch.begin(), store_epoch.end(), 0u);
      smem_epoch = 0;
    }
    Instr& ins = prog.code[pc];
    if (ins.op == Op::kSt) {
      ++store_epoch[ins.buffer];
      continue;
    }
    // Smem stores and barriers invalidate prior smem loads (a barrier
    // publishes other lanes' stores, so loads across it are not equivalent).
    if (ins.op == Op::kSmemSt || ins.op == Op::kBar) {
      ++smem_epoch;
      continue;
    }
    const bool cse_candidate = (is_pure_value_op(ins.op) && ins.op != Op::kMov) ||
                               ins.op == Op::kLd || ins.op == Op::kSmemLd;
    if (!cse_candidate) continue;
    if (defs[ins.dst] != 1) continue;
    const i32 arity = op_arity(ins.op);
    if (arity >= 1 && !single_def(defs, ins.a)) continue;
    if (arity >= 2 && !single_def(defs, ins.b)) continue;
    if (arity >= 3 && !single_def(defs, ins.c)) continue;

    Operand a = ins.a;
    Operand b = ins.b;
    if (is_commutative(ins.op) && arity == 2) {
      // Canonical order: immediates last, then by register id / bits.
      const auto rank = [&](const Operand& o) {
        return std::tuple{o.is_imm() ? 1 : 0, o.reg, o.imm.bits};
      };
      if (rank(b) < rank(a)) std::swap(a, b);
    }
    const u32 epoch = ins.op == Op::kLd     ? store_epoch[ins.buffer]
                      : ins.op == Op::kSmemLd ? smem_epoch
                                              : 0u;
    const Key key{static_cast<u8>(ins.op),  static_cast<u8>(ins.type),
                  static_cast<u8>(ins.src_type), static_cast<u8>(ins.cmp),
                  ins.buffer,                epoch,
                  okey(a),                   okey(b),
                  okey(ins.c)};
    const auto [it, inserted] = table.emplace(key, ins.dst);
    if (!inserted) {
      const Type result_type =
          ins.op == Op::kSetp ? Type::kPred : ins.type;
      ins = make_mov(ins.dst, result_type, Operand::r(it->second));
      ++stats.cse_hits;
    }
  }
  return stats;
}

PassStats dead_code_elim(Program& prog) {
  PassStats stats;
  for (;;) {
    // Use counts over all operands (including branch predicates).
    std::vector<u32> uses(prog.num_regs, 0);
    for (const Instr& ins : prog.code) {
      const auto count = [&](const Operand& o) {
        if (o.is_reg()) ++uses[o.reg];
      };
      count(ins.a);
      count(ins.b);
      count(ins.c);
    }

    std::vector<bool> dead(prog.code.size(), false);
    i64 removed = 0;
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
      const Instr& ins = prog.code[pc];
      if (ins.has_side_effects()) continue;
      if (!op_has_dst(ins.op)) continue;
      if (uses[ins.dst] == 0) {
        dead[pc] = true;
        ++removed;
      }
    }
    if (removed == 0) break;
    stats.removed += removed;

    // Compact, remapping branch targets and markers to the next surviving
    // instruction at or after the old position.
    std::vector<u32> new_index(prog.code.size() + 1, 0);
    u32 next = 0;
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
      new_index[pc] = next;
      if (!dead[pc]) ++next;
    }
    new_index[prog.code.size()] = next;

    std::vector<Instr> compacted;
    compacted.reserve(static_cast<std::size_t>(next));
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
      if (dead[pc]) continue;
      Instr ins = prog.code[pc];
      if (ins.op == Op::kBra) ins.target = new_index[ins.target];
      compacted.push_back(ins);
    }
    for (auto& [mname, mpc] : prog.markers) {
      (void)mname;
      mpc = new_index[mpc];
    }
    prog.code = std::move(compacted);
  }
  return stats;
}

PassStats optimize(Program& prog) {
  obs::ScopedSpan opt_span("ir.optimize", "compile");
  // Runs one pass under its own span, recording the instruction-count delta
  // it produced (the span is free when tracing is off).
  const auto traced = [&prog](const char* name, PassStats (*pass)(Program&)) {
    obs::ScopedSpan span(name, "compile.pass");
    const std::size_t before = prog.code.size();
    const PassStats stats = pass(prog);
    if (span.recording()) {
      span.arg("instrs_before", static_cast<i64>(before));
      span.arg("instrs_after", static_cast<i64>(prog.code.size()));
      span.arg("changed", static_cast<i64>(stats.total()));
    }
    return stats;
  };
  PassStats total;
  int rounds = 0;
  for (int round = 0; round < 4; ++round) {
    ++rounds;
    PassStats round_stats;
    round_stats += traced("ir.constant_fold", constant_fold);
    round_stats += traced("ir.copy_propagate", copy_propagate);
    round_stats += traced("ir.local_cse", local_cse);
    round_stats += traced("ir.copy_propagate", copy_propagate);
    round_stats += traced("ir.dead_code_elim", dead_code_elim);
    total += round_stats;
    if (round_stats.total() == 0) break;
  }
  verify(prog);
  if (opt_span.recording()) {
    opt_span.arg("kernel", prog.name);
    opt_span.arg("rounds", static_cast<i64>(rounds));
    opt_span.arg("instrs", static_cast<i64>(prog.code.size()));
  }
  return total;
}

}  // namespace ispb::ir

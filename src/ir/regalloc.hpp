// Register-pressure estimation via linear-scan interval analysis.
//
// The cost side of the paper's model (Section IV-B, Table II) hinges on the
// register usage of the generated kernels: the fat ISP kernel keeps the
// partition bounds and thread coordinates live across the region switch and
// therefore needs more registers than the naive kernel, which can reduce
// occupancy. This module computes the physical register demand of a program
// the way a linear-scan allocator would: live intervals in linear order,
// extended across loop back-edges, maximum overlap = registers required.
#pragma once

#include <vector>

#include "ir/program.hpp"

namespace ispb::ir {

/// Result of the interval analysis.
struct RegAllocResult {
  i32 registers = 0;  ///< maximum simultaneously live values
  i32 intervals = 0;  ///< number of live intervals (defined-and-used regs)
};

/// Computes the physical register demand of `prog`. Input registers are
/// treated as defined before the first instruction. Intervals crossing a
/// backward branch are extended to the branch (loop-carried values stay
/// live for the whole loop).
[[nodiscard]] RegAllocResult allocate_registers(const Program& prog);

}  // namespace ispb::ir

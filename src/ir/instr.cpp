#include "ir/instr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ispb::ir {

std::string_view op_keyword(Op op) {
  switch (op) {
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kDiv:
      return "div";
    case Op::kRem:
      return "rem";
    case Op::kMin:
      return "min";
    case Op::kMax:
      return "max";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kShl:
      return "shl";
    case Op::kShr:
      return "shr";
    case Op::kMad:
      return "mad";
    case Op::kSelp:
      return "selp";
    case Op::kNeg:
      return "neg";
    case Op::kAbs:
      return "abs";
    case Op::kMov:
      return "mov";
    case Op::kCvt:
      return "cvt";
    case Op::kEx2:
      return "ex2";
    case Op::kLg2:
      return "lg2";
    case Op::kRcp:
      return "rcp";
    case Op::kSqrt:
      return "sqrt";
    case Op::kSetp:
      return "setp";
    case Op::kLd:
      return "ld";
    case Op::kSt:
      return "st";
    case Op::kSmemLd:
      return "ld.shared";
    case Op::kSmemSt:
      return "st.shared";
    case Op::kBar:
      return "bar.sync";
    case Op::kBra:
      return "bra";
    case Op::kRet:
      return "ret";
  }
  return "?";
}

std::string_view type_suffix(Type t) {
  switch (t) {
    case Type::kI32:
      return ".s32";
    case Type::kF32:
      return ".f32";
    case Type::kPred:
      return ".pred";
  }
  return ".?";
}

std::string_view cmp_name(Cmp c) {
  switch (c) {
    case Cmp::kLt:
      return "lt";
    case Cmp::kLe:
      return "le";
    case Cmp::kGt:
      return "gt";
    case Cmp::kGe:
      return "ge";
    case Cmp::kEq:
      return "eq";
    case Cmp::kNe:
      return "ne";
  }
  return "?";
}

i32 op_arity(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kMin:
    case Op::kMax:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSetp:
    case Op::kSt:
    case Op::kSmemSt:
      return 2;
    case Op::kMad:
    case Op::kSelp:
      return 3;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kMov:
    case Op::kCvt:
    case Op::kEx2:
    case Op::kLg2:
    case Op::kRcp:
    case Op::kSqrt:
    case Op::kLd:
    case Op::kSmemLd:
      return 1;
    case Op::kBar:
    case Op::kBra:
    case Op::kRet:
      return 0;
  }
  return 0;
}

bool op_has_dst(Op op) {
  switch (op) {
    case Op::kSt:
    case Op::kSmemSt:
    case Op::kBar:
    case Op::kBra:
    case Op::kRet:
      return false;
    default:
      return true;
  }
}

namespace {

// Wrapping signed arithmetic via unsigned (signed overflow is UB in C++,
// defined modular behavior on the device).
i32 wrap_add(i32 a, i32 b) {
  return std::bit_cast<i32>(std::bit_cast<u32>(a) + std::bit_cast<u32>(b));
}
i32 wrap_sub(i32 a, i32 b) {
  return std::bit_cast<i32>(std::bit_cast<u32>(a) - std::bit_cast<u32>(b));
}
i32 wrap_mul(i32 a, i32 b) {
  return std::bit_cast<i32>(std::bit_cast<u32>(a) * std::bit_cast<u32>(b));
}

bool eval_cmp_i32(Cmp c, i32 a, i32 b) {
  switch (c) {
    case Cmp::kLt:
      return a < b;
    case Cmp::kLe:
      return a <= b;
    case Cmp::kGt:
      return a > b;
    case Cmp::kGe:
      return a >= b;
    case Cmp::kEq:
      return a == b;
    case Cmp::kNe:
      return a != b;
  }
  return false;
}

bool eval_cmp_f32(Cmp c, f32 a, f32 b) {
  switch (c) {
    case Cmp::kLt:
      return a < b;
    case Cmp::kLe:
      return a <= b;
    case Cmp::kGt:
      return a > b;
    case Cmp::kGe:
      return a >= b;
    case Cmp::kEq:
      return a == b;
    case Cmp::kNe:
      return a != b;
  }
  return false;
}

}  // namespace

Word eval_pure(const Instr& ins, Word a, Word b, Word c) {
  const bool is_f32 = ins.type == Type::kF32;
  switch (ins.op) {
    case Op::kAdd:
      return is_f32 ? Word::from_f32(a.as_f32() + b.as_f32())
                    : Word::from_i32(wrap_add(a.as_i32(), b.as_i32()));
    case Op::kSub:
      return is_f32 ? Word::from_f32(a.as_f32() - b.as_f32())
                    : Word::from_i32(wrap_sub(a.as_i32(), b.as_i32()));
    case Op::kMul:
      return is_f32 ? Word::from_f32(a.as_f32() * b.as_f32())
                    : Word::from_i32(wrap_mul(a.as_i32(), b.as_i32()));
    case Op::kDiv: {
      if (is_f32) return Word::from_f32(a.as_f32() / b.as_f32());
      const i32 d = b.as_i32();
      if (d == 0) return Word::from_i32(0);
      if (d == -1 && a.as_i32() == INT32_MIN) return Word::from_i32(INT32_MIN);
      return Word::from_i32(a.as_i32() / d);
    }
    case Op::kRem: {
      ISPB_ASSERT(!is_f32);
      const i32 d = b.as_i32();
      if (d == 0) return Word::from_i32(0);
      if (d == -1 && a.as_i32() == INT32_MIN) return Word::from_i32(0);
      return Word::from_i32(a.as_i32() % d);
    }
    case Op::kMin:
      return is_f32 ? Word::from_f32(std::fmin(a.as_f32(), b.as_f32()))
                    : Word::from_i32(std::min(a.as_i32(), b.as_i32()));
    case Op::kMax:
      return is_f32 ? Word::from_f32(std::fmax(a.as_f32(), b.as_f32()))
                    : Word::from_i32(std::max(a.as_i32(), b.as_i32()));
    case Op::kAnd:
      return Word{a.bits & b.bits};
    case Op::kOr:
      return Word{a.bits | b.bits};
    case Op::kXor:
      return Word{a.bits ^ b.bits};
    case Op::kShl:
      return Word{a.bits << (b.bits & 31u)};
    case Op::kShr:  // arithmetic shift for s32
      return Word::from_i32(a.as_i32() >> static_cast<i32>(b.bits & 31u));
    case Op::kMad:
      // f32 mad is a true fused multiply-add (single rounding) so results do
      // not depend on the host compiler's contraction choices. The code
      // generator only emits integer mads for addresses; float convolutions
      // use separate mul/add to match the two-rounding CPU reference.
      return is_f32
                 ? Word::from_f32(std::fma(a.as_f32(), b.as_f32(), c.as_f32()))
                 : Word::from_i32(
                       wrap_add(wrap_mul(a.as_i32(), b.as_i32()), c.as_i32()));
    case Op::kSelp:
      return c.as_pred() ? a : b;
    case Op::kNeg:
      return is_f32 ? Word::from_f32(-a.as_f32())
                    : Word::from_i32(wrap_sub(0, a.as_i32()));
    case Op::kAbs:
      return is_f32 ? Word::from_f32(std::fabs(a.as_f32()))
                    : Word::from_i32(a.as_i32() < 0 ? wrap_sub(0, a.as_i32())
                                                    : a.as_i32());
    case Op::kMov:
      return a;
    case Op::kCvt: {
      if (ins.src_type == ins.type) return a;
      if (ins.src_type == Type::kI32 && ins.type == Type::kF32) {
        return Word::from_f32(static_cast<f32>(a.as_i32()));
      }
      if (ins.src_type == Type::kF32 && ins.type == Type::kI32) {
        // cvt.rzi: round toward zero, saturating at the i32 range.
        const f32 v = a.as_f32();
        if (std::isnan(v)) return Word::from_i32(0);
        if (v >= 2147483648.0f) return Word::from_i32(INT32_MAX);
        if (v <= -2147483904.0f) return Word::from_i32(INT32_MIN);
        return Word::from_i32(static_cast<i32>(v));
      }
      ISPB_ASSERT(false);
      return a;
    }
    case Op::kEx2:
      return Word::from_f32(std::exp2(a.as_f32()));
    case Op::kLg2:
      return Word::from_f32(std::log2(a.as_f32()));
    case Op::kRcp:
      return Word::from_f32(1.0f / a.as_f32());
    case Op::kSqrt:
      return Word::from_f32(std::sqrt(a.as_f32()));
    case Op::kSetp:
      return Word::from_pred(ins.type == Type::kF32
                                 ? eval_cmp_f32(ins.cmp, a.as_f32(), b.as_f32())
                                 : eval_cmp_i32(ins.cmp, a.as_i32(),
                                                b.as_i32()));
    case Op::kLd:
    case Op::kSt:
    case Op::kSmemLd:
    case Op::kSmemSt:
    case Op::kBar:
    case Op::kBra:
    case Op::kRet:
      break;
  }
  throw ContractError("eval_pure called on non-pure instruction");
}

}  // namespace ispb::ir

#include "ir/regalloc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ispb::ir {

RegAllocResult allocate_registers(const Program& prog) {
  obs::ScopedSpan span("ir.allocate_registers", "compile");
  constexpr i32 kNoPos = -2;
  // def position (first write; -1 for inputs) and last read position.
  std::vector<i32> first_def(prog.num_regs, kNoPos);
  std::vector<i32> last_use(prog.num_regs, kNoPos);
  for (u32 r = 0; r < prog.num_inputs(); ++r) first_def[r] = -1;

  const auto note_use = [&](const Operand& o, i32 pos) {
    if (o.is_reg()) last_use[o.reg] = std::max(last_use[o.reg], pos);
  };
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    const i32 pos = static_cast<i32>(pc);
    note_use(ins.a, pos);
    note_use(ins.b, pos);
    note_use(ins.c, pos);
    if (op_has_dst(ins.op) && first_def[ins.dst] == kNoPos) {
      first_def[ins.dst] = pos;
    }
  }

  // Loop extension: a value live anywhere inside [target, branch] of a
  // backward branch must stay live through the whole span, because control
  // may return to the target after the branch.
  std::vector<std::pair<i32, i32>> backedges;
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    if (ins.op == Op::kBra && ins.target <= pc) {
      backedges.emplace_back(static_cast<i32>(ins.target),
                             static_cast<i32>(pc));
    }
  }
  if (!backedges.empty()) {
    for (u32 r = 0; r < prog.num_regs; ++r) {
      if (first_def[r] == kNoPos || last_use[r] == kNoPos) continue;
      for (const auto& [t, b] : backedges) {
        const bool overlaps = first_def[r] <= b && last_use[r] >= t;
        if (overlaps) last_use[r] = std::max(last_use[r], b);
      }
    }
  }

  // Sweep: +1 at def, -1 after last use; track the maximum.
  struct Event {
    i32 pos;
    i32 delta;
  };
  std::vector<Event> events;
  i32 intervals = 0;
  for (u32 r = 0; r < prog.num_regs; ++r) {
    if (first_def[r] == kNoPos) continue;
    // Inputs that are never read still occupy a register at entry; give them
    // a zero-length interval so unused parameters are not free.
    const i32 end = std::max(last_use[r], first_def[r]);
    events.push_back({first_def[r], +1});
    events.push_back({end + 1, -1});
    ++intervals;
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.pos != b.pos ? a.pos < b.pos : a.delta < b.delta;
  });

  i32 live = 0;
  i32 peak = 0;
  for (const Event& e : events) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  ISPB_ENSURES(live == 0);
  if (span.recording()) {
    span.arg("kernel", prog.name);
    span.arg("registers", static_cast<i64>(peak));
    span.arg("intervals", static_cast<i64>(intervals));
  }
  return RegAllocResult{peak, intervals};
}

}  // namespace ispb::ir

// Instruction inventory: counts per PTX keyword (the unit of Table I).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ir/instr.hpp"

namespace ispb::ir {

/// Per-opcode instruction counters. Used statically (instructions present in
/// a program) and dynamically (instructions executed by the simulator).
class Inventory {
 public:
  void add(Op op, i64 n = 1) { counts_[static_cast<std::size_t>(op)] += n; }

  [[nodiscard]] i64 of(Op op) const {
    return counts_[static_cast<std::size_t>(op)];
  }

  [[nodiscard]] i64 total() const {
    i64 sum = 0;
    for (i64 c : counts_) sum += c;
    return sum;
  }

  Inventory& operator+=(const Inventory& o) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    return *this;
  }

  friend Inventory operator+(Inventory a, const Inventory& b) {
    a += b;
    return a;
  }

  /// Keywords with nonzero counts, sorted descending by count.
  [[nodiscard]] std::vector<std::pair<std::string, i64>> nonzero() const;

  /// Counts multiplied by `factor` and rounded (sampled-launch scaling).
  [[nodiscard]] Inventory scaled(f64 factor) const;

  friend bool operator==(const Inventory&, const Inventory&) = default;

 private:
  std::array<i64, kOpCount> counts_{};
};

}  // namespace ispb::ir

// PTX-style textual rendering of IR programs.
//
// The output is *PTX-like*, not loadable PTX: it exists so users can inspect
// what the compiler generated (the paper's Table I was produced by manually
// disassembling real PTX; our benches run the same inventory over this IR).
#pragma once

#include <string>

#include "ir/program.hpp"

namespace ispb::ir {

/// Renders the whole program: header, register/param declarations, one line
/// per instruction with labels and markers interleaved.
[[nodiscard]] std::string to_ptx(const Program& prog);

/// Renders a single instruction (no trailing newline).
[[nodiscard]] std::string to_ptx(const Instr& ins);

}  // namespace ispb::ir

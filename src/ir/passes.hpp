// Optimizer passes.
//
// The paper observes (Section IV-A1, Table I) that NVCC's common
// sub-expression elimination narrows the gap between the naive and the ISP
// kernels because the naive kernel's many conditional checks share address
// arithmetic. To reproduce that effect faithfully, the same pass pipeline is
// applied to both generated variants before counting instructions or
// simulating.
//
// All passes are semantics-preserving: the randomized-program equivalence
// tests (tests/test_ir_passes.cpp) check interpreter equality before/after.
#pragma once

#include "ir/program.hpp"

namespace ispb::ir {

/// What a pass changed (for logging and tests).
struct PassStats {
  i64 folded = 0;      ///< instructions constant-folded / simplified
  i64 propagated = 0;  ///< operand slots rewritten by copy propagation
  i64 cse_hits = 0;    ///< instructions replaced by an earlier equivalent
  i64 removed = 0;     ///< instructions deleted by DCE

  PassStats& operator+=(const PassStats& o) {
    folded += o.folded;
    propagated += o.propagated;
    cse_hits += o.cse_hits;
    removed += o.removed;
    return *this;
  }
  [[nodiscard]] i64 total() const {
    return folded + propagated + cse_hits + removed;
  }
};

/// Folds pure instructions with all-immediate operands into `mov`, plus a
/// small set of exactly value-preserving algebraic identities.
PassStats constant_fold(Program& prog);

/// Replaces uses of single-definition `mov` destinations with the moved
/// operand.
PassStats copy_propagate(Program& prog);

/// Local common sub-expression elimination within basic blocks (the NVCC
/// effect discussed above). Loads participate until the next store to the
/// same buffer.
PassStats local_cse(Program& prog);

/// Flow-insensitive dead code elimination: removes value-producing
/// instructions whose destination is never read. Compacts the program and
/// remaps branch targets and markers.
PassStats dead_code_elim(Program& prog);

/// Runs the full pipeline (fold / propagate / CSE / DCE) to a fixpoint
/// (bounded number of rounds) and re-verifies the program.
PassStats optimize(Program& prog);

}  // namespace ispb::ir

// Flat IR programs: the unit the compiler emits and the simulator executes.
#pragma once

#include <string>
#include <vector>

#include "ir/instr.hpp"
#include "ir/inventory.hpp"

namespace ispb::ir {

/// A kernel program in flat form. Registers [0, num_inputs()) are
/// pre-initialized by the launcher: first the special registers (thread
/// identity such as tid.x/ctaid.x), then the kernel parameters (image
/// geometry, partition bounds, border constant). Branch targets are
/// instruction indices.
struct Program {
  std::string name;
  u32 num_regs = 0;
  std::vector<std::string> special_names;  ///< registers [0, #special)
  std::vector<std::string> param_names;    ///< registers [#special, #inputs)
  u32 num_buffers = 0;

  /// Per-block shared-memory size in 32-bit words. Zero for kernels that do
  /// not stage (no kSmemLd/kSmemSt/kBar allowed then); nonzero declares one
  /// block-shared array of this many f32 words, zero-initialized per block.
  u32 smem_words = 0;

  std::vector<Instr> code;

  /// Named positions in the code (region entry points); used to attribute
  /// instructions to regions for the Table I breakdown.
  std::vector<std::pair<std::string, u32>> markers;

  /// Free-form codegen provenance ("variant", "pattern", "app", ...): lets
  /// analyses and tools report what a kernel is without re-deriving it from
  /// the instruction stream. Purely descriptive — never affects execution.
  std::vector<std::pair<std::string, std::string>> annotations;

  [[nodiscard]] u32 num_special() const {
    return static_cast<u32>(special_names.size());
  }
  [[nodiscard]] u32 num_params() const {
    return static_cast<u32>(param_names.size());
  }
  [[nodiscard]] u32 num_inputs() const { return num_special() + num_params(); }

  /// Index of a named parameter register, or throws.
  [[nodiscard]] RegId param_reg(std::string_view pname) const;

  /// Static per-opcode counts over the whole program.
  [[nodiscard]] Inventory static_inventory() const;

  /// Static counts restricted to [begin, end) instruction indices.
  [[nodiscard]] Inventory static_inventory(u32 begin, u32 end) const;

  /// Marker lookup: pc of marker `mname`, or throws.
  [[nodiscard]] u32 marker_pc(std::string_view mname) const;

  /// Annotation lookup: value of `key`, or "" when absent.
  [[nodiscard]] std::string_view annotation(std::string_view key) const;
};

/// Structural validation: operand arity and kinds, register bounds, branch
/// targets, terminator presence, buffer bounds, and linear-order
/// def-before-use (inputs are pre-defined). Throws VerifyError with a
/// diagnostic on the first violation.
void verify(const Program& prog);

}  // namespace ispb::ir

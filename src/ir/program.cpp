#include "ir/program.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace ispb::ir {

RegId Program::param_reg(std::string_view pname) const {
  for (std::size_t i = 0; i < param_names.size(); ++i) {
    if (param_names[i] == pname) {
      return num_special() + static_cast<RegId>(i);
    }
  }
  throw ContractError("unknown parameter: " + std::string(pname));
}

Inventory Program::static_inventory() const {
  return static_inventory(0, static_cast<u32>(code.size()));
}

Inventory Program::static_inventory(u32 begin, u32 end) const {
  ISPB_EXPECTS(begin <= end && end <= code.size());
  Inventory inv;
  for (u32 i = begin; i < end; ++i) inv.add(code[i].op);
  return inv;
}

u32 Program::marker_pc(std::string_view mname) const {
  for (const auto& [name_, pc] : markers) {
    if (name_ == mname) return pc;
  }
  throw ContractError("unknown marker: " + std::string(mname));
}

std::string_view Program::annotation(std::string_view key) const {
  for (const auto& [k, v] : annotations) {
    if (k == key) return v;
  }
  return {};
}

namespace {

[[noreturn]] void fail(const Program& prog, u32 pc, const std::string& msg) {
  std::ostringstream os;
  os << "IR verify failed in '" << prog.name << "' at pc " << pc << ": "
     << msg;
  throw VerifyError(os.str());
}

void check_operand(const Program& prog, u32 pc, const Operand& o,
                   const char* which, std::vector<bool>& defined,
                   bool check_defined) {
  if (o.is_none()) fail(prog, pc, std::string("missing operand ") + which);
  if (o.is_reg()) {
    if (o.reg >= prog.num_regs) {
      fail(prog, pc, std::string("operand ") + which + " register out of range");
    }
    if (check_defined && !defined[o.reg]) {
      fail(prog, pc,
           std::string("operand ") + which + " (r" + std::to_string(o.reg) +
               ") used before linear-order definition");
    }
  }
}

}  // namespace

void verify(const Program& prog) {
  if (prog.code.empty()) fail(prog, 0, "empty program");
  if (prog.num_inputs() > prog.num_regs) {
    fail(prog, 0, "more input registers than registers");
  }

  std::vector<bool> defined(prog.num_regs, false);
  for (u32 i = 0; i < prog.num_inputs(); ++i) defined[i] = true;

  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    const i32 arity = op_arity(ins.op);

    if (op_has_dst(ins.op)) {
      if (ins.dst == kNoReg || ins.dst >= prog.num_regs) {
        fail(prog, pc, "bad destination register");
      }
      if (ins.dst < prog.num_inputs()) {
        fail(prog, pc, "write to input register");
      }
    } else if (ins.dst != kNoReg) {
      fail(prog, pc, "destination on dst-less opcode");
    }

    if (arity >= 1) check_operand(prog, pc, ins.a, "a", defined, true);
    if (arity >= 2) check_operand(prog, pc, ins.b, "b", defined, true);
    if (arity >= 3) check_operand(prog, pc, ins.c, "c", defined, true);

    switch (ins.op) {
      case Op::kLd:
      case Op::kSt:
        if (ins.buffer >= prog.num_buffers) {
          fail(prog, pc, "buffer index out of range");
        }
        if (!ins.a.is_reg()) fail(prog, pc, "memory address must be a register");
        break;
      case Op::kSmemLd:
      case Op::kSmemSt:
        if (prog.smem_words == 0) {
          fail(prog, pc, "shared-memory access in a kernel with smem_words == 0");
        }
        if (!ins.a.is_reg()) {
          fail(prog, pc, "shared-memory address must be a register");
        }
        break;
      case Op::kBar:
        if (prog.smem_words == 0) {
          fail(prog, pc, "barrier in a kernel with smem_words == 0");
        }
        break;
      case Op::kBra:
        if (ins.target >= prog.code.size()) {
          fail(prog, pc, "branch target out of range");
        }
        if (!ins.c.is_none()) {
          check_operand(prog, pc, ins.c, "pred", defined, true);
          if (!ins.c.is_reg()) fail(prog, pc, "branch predicate must be a register");
        }
        break;
      case Op::kCvt:
        if (ins.src_type == Type::kPred || ins.type == Type::kPred) {
          fail(prog, pc, "cvt to/from pred");
        }
        break;
      case Op::kSetp:
        if (ins.type == Type::kPred) {
          fail(prog, pc, "setp compares i32/f32 operands; type is the operand type");
        }
        break;
      default:
        break;
    }

    if (op_has_dst(ins.op)) defined[ins.dst] = true;
  }

  const Instr& last = prog.code.back();
  if (last.op != Op::kRet && !(last.op == Op::kBra && !last.c.is_reg())) {
    fail(prog, static_cast<u32>(prog.code.size() - 1),
         "program must end in ret or an unconditional branch");
  }

  for (const auto& [mname, pc] : prog.markers) {
    if (pc > prog.code.size()) {
      fail(prog, pc, "marker '" + mname + "' out of range");
    }
  }
}

}  // namespace ispb::ir

// IR construction helper with label resolution.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ispb::ir {

/// Builds a Program incrementally. Registers are virtual and unbounded; the
/// register allocator later reports the physical demand. Labels decouple
/// emission order from branch targets and are resolved in finish().
class Builder {
 public:
  using Label = u32;

  explicit Builder(std::string name);

  /// Declares a special (thread-identity) register. Must precede params.
  RegId add_special(std::string sname);
  /// Declares a kernel parameter register. Must precede any code.
  RegId add_param(std::string pname);
  /// Declares a memory buffer; returns its index.
  u8 add_buffer();

  /// Declares the per-block shared-memory array size in f32 words. May be
  /// called once, before finish(); required for emit_smem_ld/st/emit_bar.
  void declare_smem(u32 words);

  /// Allocates a fresh virtual register (rarely needed directly).
  RegId fresh_reg();

  // --- value-producing instructions (fresh destination) ---
  RegId emit(Op op, Type type, Operand a, Operand b = Operand::none(),
             Operand c = Operand::none());
  RegId emit_cvt(Type to, Type from, Operand a);
  RegId emit_setp(Cmp cmp, Type operand_type, Operand a, Operand b);
  RegId emit_selp(Type type, Operand a, Operand b, RegId pred);
  RegId emit_ld(u8 buffer, RegId addr);
  RegId emit_smem_ld(RegId addr);

  /// Re-defines an existing register (loop induction variables); everything
  /// else should use the fresh-destination forms to stay close to SSA.
  void emit_to(RegId dst, Op op, Type type, Operand a,
               Operand b = Operand::none(), Operand c = Operand::none());

  // --- effects ---
  void emit_st(u8 buffer, RegId addr, Operand value);
  void emit_smem_st(RegId addr, Operand value);
  void emit_bar();
  void ret();

  // --- control flow ---
  [[nodiscard]] Label make_label();
  void bind(Label l);
  void br(Label l);
  /// Branch to `l` when `pred` is true (or false with negate: emitted as a
  /// setp-inverted use; the IR branches on the given predicate register).
  void br_if(RegId pred, Label l);
  /// Branch to `l` when `pred` is false (PTX `@!p bra`): lowered as an
  /// explicit xor-with-1 predicate flip plus a conditional branch.
  void br_unless(RegId pred, Label l);

  /// Records a named marker at the current pc (region entry points).
  void marker(std::string mname);

  /// Current instruction count (for size assertions in tests).
  [[nodiscard]] std::size_t code_size() const { return code_.size(); }

  /// Resolves labels, fills metadata and verifies the program.
  [[nodiscard]] Program finish();

 private:
  void check_not_finished() const;

  std::string name_;
  std::vector<std::string> special_names_;
  std::vector<std::string> param_names_;
  u32 num_buffers_ = 0;
  u32 smem_words_ = 0;
  u32 next_reg_ = 0;
  bool code_started_ = false;
  bool finished_ = false;
  std::vector<Instr> code_;
  std::vector<std::pair<std::string, u32>> markers_;
  // labels: bound pc or kUnbound; patch list of (instr index) per label
  static constexpr u32 kUnbound = static_cast<u32>(-1);
  std::vector<u32> label_pc_;
  std::vector<std::vector<u32>> label_patches_;
};

}  // namespace ispb::ir

// PTX-like instruction set.
//
// The source-to-source compiler lowers stencil kernels into this IR; the GPU
// simulator executes it per warp, and the instruction inventory of Table I is
// taken over it. The opcode set mirrors the PTX subset the paper inventories
// (add/mul/mad/cvt/setp/selp/min/max/ld/st/bra plus the SFU approximations
// ex2/lg2/rcp/sqrt used by the Bilateral and Night filters).
#pragma once

#include <bit>
#include <cstddef>
#include <string_view>

#include "common/types.hpp"

namespace ispb::ir {

/// Generic opcodes; the operand `Type` selects the PTX flavor
/// (e.g. kAdd + kI32 prints as `add.s32`, kAdd + kF32 as `add.f32`).
enum class Op : u8 {
  // Binary arithmetic (dst, a, b)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kMin,
  kMax,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  // Ternary (dst, a, b, c)
  kMad,   // dst = a * b + c
  kSelp,  // dst = c ? a : b   (c is a predicate register)
  // Unary (dst, a)
  kNeg,
  kAbs,
  kMov,
  kCvt,   // convert src_type -> type
  kEx2,   // 2^x        (SFU)
  kLg2,   // log2(x)    (SFU)
  kRcp,   // 1/x        (SFU)
  kSqrt,  // sqrt(x)    (SFU)
  // Predicates
  kSetp,  // dst(pred) = cmp(a, b)
  // Memory (element-indexed into a bound buffer)
  kLd,  // dst = buffer[a]
  kSt,  // buffer[a] = b
  // Shared memory (element-indexed into the per-block smem array declared by
  // Program::smem_words; cooperative staging requires a kBar before readers
  // observe other lanes' stores)
  kSmemLd,  // dst = smem[a]
  kSmemSt,  // smem[a] = b
  kBar,     // block-wide barrier (bar.sync): all unretired lanes must arrive
  // Control flow
  kBra,  // if (c as pred, possibly negated) goto target; unconditional if no pred
  kRet,
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kRet) + 1;

/// Operand/result types. Predicates live in ordinary registers holding 0/1.
enum class Type : u8 { kI32, kF32, kPred };

/// Comparison operators for kSetp.
enum class Cmp : u8 { kLt, kLe, kGt, kGe, kEq, kNe };

/// A 32-bit register value, reinterpreted by type.
struct Word {
  u32 bits = 0;

  [[nodiscard]] static Word from_i32(i32 v) {
    return Word{std::bit_cast<u32>(v)};
  }
  [[nodiscard]] static Word from_f32(f32 v) {
    return Word{std::bit_cast<u32>(v)};
  }
  [[nodiscard]] static Word from_pred(bool v) { return Word{v ? 1u : 0u}; }

  [[nodiscard]] i32 as_i32() const { return std::bit_cast<i32>(bits); }
  [[nodiscard]] f32 as_f32() const { return std::bit_cast<f32>(bits); }
  [[nodiscard]] bool as_pred() const { return bits != 0; }

  friend constexpr bool operator==(const Word&, const Word&) = default;
};

/// Register index type. kNoReg marks an absent dst.
using RegId = u32;
inline constexpr RegId kNoReg = static_cast<RegId>(-1);

/// An instruction operand: virtual register or immediate.
struct Operand {
  enum class Kind : u8 { kNone, kReg, kImm };
  Kind kind = Kind::kNone;
  RegId reg = kNoReg;
  Word imm{};

  [[nodiscard]] static Operand none() { return Operand{}; }
  [[nodiscard]] static Operand r(RegId id) {
    return Operand{Kind::kReg, id, Word{}};
  }
  [[nodiscard]] static Operand imm_i32(i32 v) {
    return Operand{Kind::kImm, kNoReg, Word::from_i32(v)};
  }
  [[nodiscard]] static Operand imm_f32(f32 v) {
    return Operand{Kind::kImm, kNoReg, Word::from_f32(v)};
  }
  [[nodiscard]] bool is_reg() const { return kind == Kind::kReg; }
  [[nodiscard]] bool is_imm() const { return kind == Kind::kImm; }
  [[nodiscard]] bool is_none() const { return kind == Kind::kNone; }

  friend constexpr bool operator==(const Operand&, const Operand&) = default;
};

/// One flat-form instruction. Programs are flat instruction arrays; branch
/// targets are instruction indices (resolved from labels by the builder).
struct Instr {
  Op op = Op::kRet;
  Type type = Type::kI32;
  Type src_type = Type::kI32;  ///< kCvt only: source type
  Cmp cmp = Cmp::kLt;          ///< kSetp only
  RegId dst = kNoReg;
  Operand a{};
  Operand b{};
  Operand c{};
  u32 target = 0;  ///< kBra only: instruction index
  u8 buffer = 0;   ///< kLd/kSt only: bound buffer index

  [[nodiscard]] bool is_branch() const { return op == Op::kBra; }
  [[nodiscard]] bool is_conditional_branch() const {
    return op == Op::kBra && c.is_reg();
  }
  /// True for instructions whose effects are observable beyond their dst.
  [[nodiscard]] bool has_side_effects() const {
    return op == Op::kSt || op == Op::kSmemSt || op == Op::kBar ||
           op == Op::kBra || op == Op::kRet;
  }
};

/// PTX keyword for the opcode (the categorization unit of Table I).
[[nodiscard]] std::string_view op_keyword(Op op);

/// PTX type suffix (".s32", ".f32", ".pred").
[[nodiscard]] std::string_view type_suffix(Type t);

/// PTX comparison mnemonic ("lt", "le", ...).
[[nodiscard]] std::string_view cmp_name(Cmp c);

/// Number of register-or-immediate source operands the opcode consumes.
[[nodiscard]] i32 op_arity(Op op);

/// True when the opcode writes a destination register.
[[nodiscard]] bool op_has_dst(Op op);

/// Evaluates a pure (non-memory, non-control) instruction on concrete
/// operand values. Division by zero yields 0 (matching the saturating
/// behavior the generated code relies on never hitting), and shifts use only
/// the low 5 bits of the shift amount, like PTX.
[[nodiscard]] Word eval_pure(const Instr& ins, Word a, Word b, Word c);

}  // namespace ispb::ir

#include "ir/interp.hpp"

#include <string>

#include "common/error.hpp"

namespace ispb::ir {

namespace {

Word read_operand(const Operand& o, const std::vector<Word>& regs) {
  if (o.is_imm()) return o.imm;
  ISPB_ASSERT(o.is_reg());
  return regs[o.reg];
}

}  // namespace

InterpResult interpret(const Program& prog, std::span<const Word> inputs,
                       std::span<const BufferBinding> buffers, u64 max_steps,
                       const AccessObserver& observer) {
  ISPB_EXPECTS(inputs.size() == prog.num_inputs());
  ISPB_EXPECTS(buffers.size() >= prog.num_buffers);

  std::vector<Word> regs(prog.num_regs);
  for (std::size_t i = 0; i < inputs.size(); ++i) regs[i] = inputs[i];

  // Single-thread view of the block-shared array: zero-initialized, so a lone
  // interpreted thread reads back only its own stores (cooperative staging
  // needs the warp simulator's block-level execution).
  std::vector<f32> smem(prog.smem_words, 0.0f);

  InterpResult result;
  u32 pc = 0;
  for (;;) {
    if (result.steps++ >= max_steps) {
      throw ContractError("interpreter exceeded max_steps in '" + prog.name +
                          "'");
    }
    ISPB_ASSERT(pc < prog.code.size());
    const Instr& ins = prog.code[pc];
    result.executed.add(ins.op);

    switch (ins.op) {
      case Op::kRet:
        return result;
      case Op::kBra: {
        bool taken = true;
        if (ins.c.is_reg()) taken = regs[ins.c.reg].as_pred();
        pc = taken ? ins.target : pc + 1;
        continue;
      }
      case Op::kLd: {
        const BufferBinding& buf = buffers[ins.buffer];
        const i32 idx = regs[ins.a.reg].as_i32();
        if (idx < 0 || static_cast<std::size_t>(idx) >= buf.size) {
          throw ContractError("ld out of bounds in '" + prog.name +
                              "': index " + std::to_string(idx) + " size " +
                              std::to_string(buf.size));
        }
        regs[ins.dst] = Word::from_f32(buf.data[idx]);
        if (observer) observer(pc, true, ins.buffer, idx);
        break;
      }
      case Op::kSt: {
        const BufferBinding& buf = buffers[ins.buffer];
        if (!buf.writable) {
          throw ContractError("st to read-only buffer in '" + prog.name + "'");
        }
        const i32 idx = regs[ins.a.reg].as_i32();
        if (idx < 0 || static_cast<std::size_t>(idx) >= buf.size) {
          throw ContractError("st out of bounds in '" + prog.name +
                              "': index " + std::to_string(idx) + " size " +
                              std::to_string(buf.size));
        }
        buf.data[idx] = read_operand(ins.b, regs).as_f32();
        if (observer) observer(pc, false, ins.buffer, idx);
        break;
      }
      case Op::kSmemLd: {
        const i32 idx = regs[ins.a.reg].as_i32();
        if (idx < 0 || static_cast<std::size_t>(idx) >= smem.size()) {
          throw ContractError("ld.shared out of bounds in '" + prog.name +
                              "': index " + std::to_string(idx) + " words " +
                              std::to_string(smem.size()));
        }
        regs[ins.dst] = Word::from_f32(smem[static_cast<std::size_t>(idx)]);
        break;
      }
      case Op::kSmemSt: {
        const i32 idx = regs[ins.a.reg].as_i32();
        if (idx < 0 || static_cast<std::size_t>(idx) >= smem.size()) {
          throw ContractError("st.shared out of bounds in '" + prog.name +
                              "': index " + std::to_string(idx) + " words " +
                              std::to_string(smem.size()));
        }
        smem[static_cast<std::size_t>(idx)] = read_operand(ins.b, regs).as_f32();
        break;
      }
      case Op::kBar:
        break;  // single thread: trivially synchronized
      default: {
        const i32 arity = op_arity(ins.op);
        const Word a = arity >= 1 ? read_operand(ins.a, regs) : Word{};
        const Word b = arity >= 2 ? read_operand(ins.b, regs) : Word{};
        const Word c = arity >= 3 ? read_operand(ins.c, regs) : Word{};
        regs[ins.dst] = eval_pure(ins, a, b, c);
        break;
      }
    }
    ++pc;
  }
}

}  // namespace ispb::ir

// Scalar reference interpreter for IR programs.
//
// Executes one logical thread from pc 0 to ret. The GPU simulator implements
// warp-level SIMT execution separately; this scalar interpreter is the
// semantic reference the optimizer passes are validated against, and it backs
// the DSL's IR-level reference executor.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ir/program.hpp"

namespace ispb::ir {

/// A memory buffer binding. `writable` guards inputs against stray stores.
struct BufferBinding {
  f32* data = nullptr;
  std::size_t size = 0;
  bool writable = false;
};

/// Execution outcome of one thread.
struct InterpResult {
  Inventory executed;  ///< dynamically executed instructions by opcode
  u64 steps = 0;       ///< total instructions executed
};

/// Observes every executed ld/st: (pc, is_load, buffer, element index).
/// Used by analyses and tests that validate statically derived addresses
/// against the semantic reference.
using AccessObserver =
    std::function<void(u32 pc, bool is_load, u8 buffer, i32 idx)>;

/// Runs `prog` with the given input-register values (length must equal
/// prog.num_inputs()) over the bound buffers. Throws ContractError on
/// out-of-bounds memory access, store to a read-only buffer, or exceeding
/// `max_steps` (runaway loop guard). A non-empty `observer` is invoked for
/// every executed memory access, after its bounds check passes.
InterpResult interpret(const Program& prog, std::span<const Word> inputs,
                       std::span<const BufferBinding> buffers,
                       u64 max_steps = 100'000'000,
                       const AccessObserver& observer = {});

}  // namespace ispb::ir

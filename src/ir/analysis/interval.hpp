// Interval (value-range) abstract domain over 32-bit register words.
//
// Registers hold 32-bit words; the domain tracks the word reinterpreted as a
// signed i32 (Word::as_i32), which is the only view address arithmetic and
// predicates use. Float-producing instructions are abstracted to Top: any
// 32-bit pattern still lies in [INT32_MIN, INT32_MAX], so containment claims
// remain sound for every register. All transfer functions over-approximate
// the wrapping semantics of ir::eval_pure: whenever an exact i64 result range
// leaves the i32 range (the operation may wrap), the result widens to Top.
#pragma once

#include <cstdint>

#include "ir/instr.hpp"

namespace ispb::analysis {

/// A closed interval [lo, hi] of i32 values; empty when lo > hi. Bounds are
/// kept in i64 so transfer arithmetic cannot itself overflow, but non-empty
/// intervals always satisfy INT32_MIN <= lo <= hi <= INT32_MAX.
struct Interval {
  static constexpr i64 kMin = INT32_MIN;
  static constexpr i64 kMax = INT32_MAX;

  i64 lo = kMin;
  i64 hi = kMax;

  [[nodiscard]] static constexpr Interval top() { return {kMin, kMax}; }
  [[nodiscard]] static constexpr Interval empty() { return {1, 0}; }
  [[nodiscard]] static constexpr Interval point(i64 v) { return {v, v}; }
  [[nodiscard]] static constexpr Interval pred() { return {0, 1}; }

  [[nodiscard]] constexpr bool is_empty() const { return lo > hi; }
  [[nodiscard]] constexpr bool is_top() const {
    return lo == kMin && hi == kMax;
  }
  [[nodiscard]] constexpr bool is_point() const { return lo == hi; }
  [[nodiscard]] constexpr bool contains(i64 v) const {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] constexpr bool contains(const Interval& o) const {
    return o.is_empty() || (lo <= o.lo && o.hi <= hi);
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Least upper bound (interval hull).
[[nodiscard]] Interval join(Interval a, Interval b);

/// Greatest lower bound (intersection; may be empty).
[[nodiscard]] Interval meet(Interval a, Interval b);

/// Lifts an exact i64 result range into the domain: identity while the range
/// fits i32, Top once the operation may have wrapped.
[[nodiscard]] Interval wrap_range(i64 lo, i64 hi);

/// Logical negation of a comparison (lt <-> ge, ...).
[[nodiscard]] ir::Cmp negate_cmp(ir::Cmp c);

/// Argument swap of a comparison (lt <-> gt, le <-> ge, eq/ne fixed).
[[nodiscard]] ir::Cmp swap_cmp(ir::Cmp c);

/// Decides `a cmp b` over intervals: 1 = definitely true for every value
/// pair, 0 = definitely false, -1 = undecided.
[[nodiscard]] int decide_cmp(ir::Cmp cmp, Interval a, Interval b);

/// Refines `x` under the constraint `x cmp y`; may return empty when the
/// constraint is unsatisfiable.
[[nodiscard]] Interval refine_cmp(Interval x, ir::Cmp cmp, Interval y);

/// Transfer function of a pure value instruction (not ld/st/bra/ret) over
/// its operand intervals. Unused operands may be passed as anything.
[[nodiscard]] Interval transfer(const ir::Instr& ins, Interval a, Interval b,
                                Interval c);

}  // namespace ispb::analysis

#include "ir/analysis/cfg.hpp"

#include <deque>

#include "common/error.hpp"

namespace ispb::analysis {

using ir::Instr;
using ir::Op;

Cfg build_cfg(const ir::Program& prog) {
  Cfg cfg;
  const u32 n = static_cast<u32>(prog.code.size());
  if (n == 0) return cfg;

  // Leaders: pc 0, every branch target, and the instruction after any
  // branch or ret.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = prog.code[pc];
    if (ins.op == Op::kBra) {
      ISPB_EXPECTS(ins.target < n);
      leader[ins.target] = true;
      if (pc + 1 < n) leader[pc + 1] = true;
    } else if (ins.op == Op::kRet && pc + 1 < n) {
      leader[pc + 1] = true;
    }
  }

  cfg.block_of.assign(n, 0);
  for (u32 pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      cfg.blocks.push_back(BasicBlock{pc, pc + 1, {}, {}});
    }
    BasicBlock& current = cfg.blocks.back();
    current.end = pc + 1;
    cfg.block_of[pc] = static_cast<u32>(cfg.blocks.size() - 1);
  }

  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& blk = cfg.blocks[b];
    const Instr& last = prog.code[blk.end - 1];
    if (last.op == Op::kRet) continue;
    if (last.op == Op::kBra) {
      blk.succ.push_back(cfg.block_of[last.target]);
      if (last.is_conditional_branch() && blk.end < n) {
        blk.succ.push_back(cfg.block_of[blk.end]);
      }
    } else if (blk.end < n) {
      blk.succ.push_back(cfg.block_of[blk.end]);
    }
  }
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    for (u32 s : cfg.blocks[b].succ) cfg.blocks[s].pred.push_back(b);
  }

  cfg.reachable.assign(cfg.blocks.size(), false);
  std::deque<u32> work{0};
  cfg.reachable[0] = true;
  while (!work.empty()) {
    const u32 b = work.front();
    work.pop_front();
    for (u32 s : cfg.blocks[b].succ) {
      if (!cfg.reachable[s]) {
        cfg.reachable[s] = true;
        work.push_back(s);
      }
    }
  }
  return cfg;
}

}  // namespace ispb::analysis

// Warp-divergence analysis over IR kernels.
//
// Classifies every reached conditional branch of a launch scenario by how
// uniformly a warp resolves it:
//
//  - scenario-constant: the interval analysis proves the predicate a point
//    under the scenario facts — every lane reaching the branch goes the same
//    way (this is how the region-switch chain and the in-bounds guards of
//    interior blocks resolve);
//  - block-uniform: the predicate is affine-decidable and no comparison leaf
//    depends on tid.x/tid.y — all threads of a block (a fortiori all lanes
//    of a warp) agree regardless of geometry;
//  - lane-dependent: affine-decidable but tid-dependent — lanes may split
//    (the iteration-space guards of partial blocks, the Constant pattern's
//    out-of-bounds predicates);
//  - undecidable: outside the predicate fragment (the Repeat pattern's
//    loop exits on data-dependent state).
//
// The paper's specialization claim — Body-region kernels are guard-free — is
// proven here at the control-flow level: every Body-routed scenario of a fat
// kernel must classify all its branches scenario-constant or block-uniform.
// Any other branch in a Body scenario is linted as kDivergentBranch.
#pragma once

#include <algorithm>

#include "ir/analysis/access_analysis.hpp"
#include "ir/analysis/checkers.hpp"

namespace ispb::analysis {

enum class BranchUniformity : u8 {
  kScenarioConstant,  ///< predicate folds to a point under the facts
  kBlockUniform,      ///< decidable, independent of tid.x/tid.y
  kLaneDependent,     ///< decidable but varies across lanes
  kUndecidable,       ///< predicate outside the affine fragment
};

[[nodiscard]] std::string_view to_string(BranchUniformity u);

/// True for classes that cannot split a warp.
[[nodiscard]] constexpr bool is_uniform(BranchUniformity u) {
  return u == BranchUniformity::kScenarioConstant ||
         u == BranchUniformity::kBlockUniform;
}

struct BranchInfo {
  u32 pc = 0;
  BranchUniformity uniformity = BranchUniformity::kUndecidable;
  std::string detail;
};

/// Classifies every reached conditional branch of one analyzed scenario.
/// `extraction` and `ranges` must come from the same program and facts.
[[nodiscard]] std::vector<BranchInfo> classify_branches(
    const ir::Program& prog, const AffineExtraction& extraction,
    const RangeResult& ranges);

/// Per-scenario classification for a whole launch geometry.
struct ScenarioDivergence {
  std::string label;
  Region region = Region::kBody;
  bool routed = false;
  std::vector<BranchInfo> branches;

  [[nodiscard]] bool uniform() const {
    return std::all_of(branches.begin(), branches.end(),
                       [](const BranchInfo& b) {
                         return is_uniform(b.uniformity);
                       });
  }
};

struct DivergenceResult {
  std::vector<ScenarioDivergence> scenarios;
  /// kDivergentBranch findings: Body-routed scenarios must be uniform; a
  /// divergent or undecidable branch there breaks the guard-free claim.
  /// kDegenerateGeometry when the partition is unusable.
  CheckReport report;
};

/// Runs the divergence analysis over every launch scenario of the kernel
/// (same enumeration as check_bounds/check_coverage).
[[nodiscard]] DivergenceResult analyze_divergence(const ir::Program& prog,
                                                  const LaunchGeometry& geom);

}  // namespace ispb::analysis

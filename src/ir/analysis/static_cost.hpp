// Static coalescing / transaction counting and cost modeling.
//
// Replays the launch a simulator run would perform — same grid, same warp
// layout, same region attribution — but evaluates every warp *statically*
// from the affine access extraction and the traced scenario path instead of
// executing instructions. For kernels inside the affine fragment the
// resulting counters are provably identical to the simulator's
// LaunchStats::per_region values:
//
//  - issue slots / per-pipe counts: a path segment issues once per warp iff
//    at least one lane passes all covering guard events (min-PC
//    reconvergence on forward control);
//  - memory transactions: affine lane addresses folded into distinct 32-byte
//    (transaction_elems) and 128-byte segments per issue slot, exactly the
//    dedup run_warp performs;
//  - cache misses: first-touch insertion into a per-block segment set — the
//    block-shared L1 model — whose final size is order-independent, so the
//    static count equals the simulated one;
//  - divergent branches: a guard event splits the warp iff its taken count
//    is neither zero nor the full active mask.
//
// Anything outside the fragment (the Repeat pattern's data-dependent loops)
// degrades the affected regions to explicit lower bounds with the fallback
// reason recorded — never silently dropped. This is the static input the
// Eq. (10) predictor can consume instead of simulator measurements.
#pragma once

#include <map>

#include "codegen/kernel_gen.hpp"
#include "gpusim/device.hpp"
#include "ir/analysis/access_analysis.hpp"
#include "ir/analysis/checkers.hpp"

namespace ispb::analysis {

/// Statically derived counters; field-for-field comparable with
/// sim::WarpResult aggregates.
struct StaticCounters {
  u64 issue_slots = 0;
  u64 lane_instructions = 0;
  u64 mem_transactions = 0;       ///< 32-byte segments (transaction_elems)
  u64 mem_transactions_wide = 0;  ///< 128-byte segments (4x)
  u64 mem_cache_misses = 0;       ///< block-level first-touch transactions
  u64 divergent_branches = 0;
  u64 smem_transactions = 0;      ///< smem access passes (incl. replays)
  u64 smem_bank_conflicts = 0;    ///< serialized bank-replay passes
  std::array<u64, 7> per_pipe{};  ///< indexed like sim::Pipe

  StaticCounters& operator+=(const StaticCounters& o);
};

/// Issue-cost cycles of the counters on `dev`; mirrors sim::warp_cycles.
[[nodiscard]] f64 static_cycles(const sim::DeviceSpec& dev,
                                const StaticCounters& c);

/// Per-region static cost (keyed like LaunchStats::per_region: the
/// classify_block side mask).
struct RegionStaticCost {
  StaticCounters counters;
  i64 blocks = 0;
  f64 cycles = 0.0;
  /// False when any contributing warp hit a non-affine access or an
  /// unanalyzable path: the counters are then lower bounds.
  bool exact = true;
  std::vector<std::string> fallbacks;  ///< distinct degradation reasons
};

/// Per-scenario trace outcome, for reporting.
struct ScenarioSummary {
  std::string label;
  Region region = Region::kBody;
  bool routed = false;
  bool complete = true;
  std::string poison_reason;
  u32 countable_accesses = 0;
  u32 fallback_accesses = 0;
};

struct StaticLaunchCost {
  std::map<u32, RegionStaticCost> per_region;
  StaticCounters total;
  f64 total_cycles = 0.0;
  i64 blocks_total = 0;
  bool exact = true;
  bool degenerate = false;
  std::vector<std::string> fallbacks;  ///< kernel-level reasons
  std::vector<ScenarioSummary> scenarios;
};

/// Statically costs a full launch of `prog` under `geom` on `dev`. The
/// program must pass ir::verify; the geometry mirrors dsl::launch_on_sim.
[[nodiscard]] StaticLaunchCost compute_static_cost(const ir::Program& prog,
                                                   const LaunchGeometry& geom,
                                                   const sim::DeviceSpec& dev);

/// Eq. (10) with the static cycle ratio as the workload-reduction factor:
/// G = (cycles_naive / cycles_isp) * (occ_isp / occ_naive), ISP iff G > 1.
struct StaticGain {
  f64 r_static = 1.0;
  f64 gain = 1.0;
  bool use_isp = false;
};

[[nodiscard]] StaticGain static_gain(const StaticLaunchCost& naive,
                                     const StaticLaunchCost& isp,
                                     f64 occupancy_naive, f64 occupancy_isp);

/// 3-way extension: the same occupancy-scaled cycle ratios evaluated for
/// the shared-memory tiled kernel as well. `best` is the variant with the
/// lowest occupancy-adjusted static cycles; ties between isp and tiled go
/// to isp (the simpler kernel).
struct StaticGain3 {
  StaticGain isp;          ///< naive vs isp, as static_gain
  f64 gain_tiled = 1.0;    ///< (cycles_naive/cycles_tiled) * O_tiled/O_naive
  codegen::Variant best = codegen::Variant::kNaive;
};

[[nodiscard]] StaticGain3 static_gain3(const StaticLaunchCost& naive,
                                       const StaticLaunchCost& isp,
                                       const StaticLaunchCost& tiled,
                                       f64 occupancy_naive, f64 occupancy_isp,
                                       f64 occupancy_tiled);

}  // namespace ispb::analysis

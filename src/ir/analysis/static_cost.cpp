#include "ir/analysis/static_cost.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "gpusim/warp.hpp"

namespace ispb::analysis {

StaticCounters& StaticCounters::operator+=(const StaticCounters& o) {
  issue_slots += o.issue_slots;
  lane_instructions += o.lane_instructions;
  mem_transactions += o.mem_transactions;
  mem_transactions_wide += o.mem_transactions_wide;
  mem_cache_misses += o.mem_cache_misses;
  divergent_branches += o.divergent_branches;
  smem_transactions += o.smem_transactions;
  smem_bank_conflicts += o.smem_bank_conflicts;
  for (std::size_t i = 0; i < per_pipe.size(); ++i) per_pipe[i] += o.per_pipe[i];
  return *this;
}

f64 static_cycles(const sim::DeviceSpec& dev, const StaticCounters& c) {
  const f64 pipe_cost[7] = {dev.cost_int_alu, dev.cost_int_mul, dev.cost_float,
                            dev.cost_sfu,     dev.cost_control,
                            dev.cost_mem_issue, dev.cost_smem};
  f64 cycles = 0.0;
  for (std::size_t i = 0; i < c.per_pipe.size(); ++i) {
    cycles += static_cast<f64>(c.per_pipe[i]) * pipe_cost[i];
  }
  cycles += static_cast<f64>(c.mem_cache_misses) * dev.cost_mem_transaction;
  cycles += static_cast<f64>(c.smem_bank_conflicts) * dev.cost_smem_conflict;
  return cycles;
}

namespace {

void push_unique(std::vector<std::string>& v, const std::string& s) {
  if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
}

/// One analyzed scenario, ready for per-warp evaluation.
struct ScenarioEval {
  Scenario scenario;
  AffineExtraction extraction;
  KernelPath path;
};

/// Statically evaluates one warp of one block against its scenario path and
/// accumulates into `rc`. `cache` is the block-shared first-touch segment
/// set (the simulator's per-block L1 model).
void eval_warp(const ScenarioEval& ev, const sim::DeviceSpec& dev,
               const BlockSize& block, i32 bx, i32 by, i32 w,
               std::unordered_set<i64>& cache, RegionStaticCost& rc) {
  const KernelPath& path = ev.path;
  const i32 lanes = dev.warp_size;

  if (!path.complete) {
    rc.exact = false;
    push_unique(rc.fallbacks, "scenario " + ev.scenario.label +
                                  ": path not traceable at pc " +
                                  std::to_string(path.poison_pc) + " (" +
                                  path.poison_reason + ")");
  }

  // Lane coordinates (fill_warp's row-major layout) and per-lane guard
  // outcomes.
  std::vector<i64> lx(static_cast<std::size_t>(lanes));
  std::vector<i64> ly(static_cast<std::size_t>(lanes));
  for (i32 lane = 0; lane < lanes; ++lane) {
    const i32 linear = w * lanes + lane;
    lx[static_cast<std::size_t>(lane)] = linear % block.tx;
    ly[static_cast<std::size_t>(lane)] = linear / block.tx;
  }
  std::vector<std::vector<bool>> taken(path.guards.size());
  for (std::size_t g = 0; g < path.guards.size(); ++g) {
    taken[g].resize(static_cast<std::size_t>(lanes));
    for (i32 lane = 0; lane < lanes; ++lane) {
      const std::size_t l = static_cast<std::size_t>(lane);
      taken[g][l] = path.guards[g].taken.eval(lx[l], ly[l], bx, by);
    }
  }
  const auto lane_active = [&](const std::vector<u32>& guards, i32 lane) {
    const std::size_t l = static_cast<std::size_t>(lane);
    return std::all_of(guards.begin(), guards.end(),
                       [&](u32 g) { return !taken[g][l]; });
  };
  const auto active_count = [&](const std::vector<u32>& guards) {
    i32 n = 0;
    for (i32 lane = 0; lane < lanes; ++lane) n += lane_active(guards, lane);
    return n;
  };

  // Segments: issued once per warp iff some lane passes all covering guards.
  for (const PathSegment& seg : path.segments) {
    const i32 active = active_count(seg.guards);
    if (active == 0) continue;
    u64 instrs = 0;
    for (std::size_t i = 0; i < seg.per_pipe.size(); ++i) {
      rc.counters.per_pipe[i] += seg.per_pipe[i];
      instrs += seg.per_pipe[i];
    }
    rc.counters.issue_slots += instrs;
    rc.counters.lane_instructions += instrs * static_cast<u64>(active);
  }

  // Divergence: a guard branch splits the warp iff, among the lanes active
  // at the branch (the guards of its containing segment), the taken count is
  // neither zero nor all of them.
  for (std::size_t g = 0; g < path.guards.size(); ++g) {
    const u32 pc = path.guards[g].branch_pc;
    const PathSegment* container = nullptr;
    for (const PathSegment& seg : path.segments) {
      if (seg.begin <= pc && pc < seg.end) {
        container = &seg;
        break;
      }
    }
    if (container == nullptr) continue;
    const i32 active = active_count(container->guards);
    if (active == 0) continue;
    i32 t = 0;
    for (i32 lane = 0; lane < lanes; ++lane) {
      if (lane_active(container->guards, lane) &&
          taken[g][static_cast<std::size_t>(lane)]) {
        ++t;
      }
    }
    if (t != 0 && t != active) ++rc.counters.divergent_branches;
  }

  // Memory accesses: per-issue-slot segment dedup at 32B and 128B
  // granularity, first-touch misses against the block cache.
  std::vector<i64> narrow;
  std::vector<i64> wide;
  for (const PathAccess& acc : path.accesses) {
    if (!acc.countable) {
      rc.exact = false;
      push_unique(rc.fallbacks,
                  "scenario " + ev.scenario.label + ": pc " +
                      std::to_string(acc.pc) + " " +
                      (acc.is_load ? "load" : "store") + ": " + acc.reason);
      continue;
    }
    if (acc.smem) {
      // Shared memory: replay the simulator's bank model — distinct word
      // addresses among active lanes, worst bank's count = serialized passes.
      narrow.clear();
      for (i32 lane = 0; lane < lanes; ++lane) {
        if (!lane_active(acc.guards, lane)) continue;
        const std::size_t l = static_cast<std::size_t>(lane);
        const i64 idx = acc.addr.eval(lx[l], ly[l], bx, by);
        if (std::find(narrow.begin(), narrow.end(), idx) == narrow.end()) {
          narrow.push_back(idx);
        }
      }
      if (!narrow.empty()) {
        std::array<u64, 32> bank_load{};
        const u64 banks = static_cast<u64>(
            std::clamp(dev.smem_banks, 1, 32));
        u64 passes = 1;
        for (const i64 idx : narrow) {
          const u64 bank = static_cast<u64>(idx) % banks;
          passes = std::max(passes, ++bank_load[bank]);
        }
        rc.counters.smem_transactions += passes;
        rc.counters.smem_bank_conflicts += passes - 1;
      }
      continue;
    }
    narrow.clear();
    wide.clear();
    for (i32 lane = 0; lane < lanes; ++lane) {
      if (!lane_active(acc.guards, lane)) continue;
      const std::size_t l = static_cast<std::size_t>(lane);
      const i64 idx = acc.addr.eval(lx[l], ly[l], bx, by);
      const i64 base = static_cast<i64>(acc.buffer) * (i64{1} << 40);
      const i64 nseg = base + idx / dev.transaction_elems;
      const i64 wseg = base + idx / (4 * dev.transaction_elems);
      if (std::find(narrow.begin(), narrow.end(), nseg) == narrow.end()) {
        narrow.push_back(nseg);
      }
      if (std::find(wide.begin(), wide.end(), wseg) == wide.end()) {
        wide.push_back(wseg);
      }
    }
    rc.counters.mem_transactions += narrow.size();
    rc.counters.mem_transactions_wide += wide.size();
    for (const i64 seg : narrow) {
      if (cache.insert(seg).second) ++rc.counters.mem_cache_misses;
    }
  }

  if (path.complete) {
    // ret: every lane reconverges there and retires in one issue slot.
    rc.counters.issue_slots += 1;
    rc.counters.per_pipe[static_cast<std::size_t>(sim::Pipe::kControl)] += 1;
    rc.counters.lane_instructions += static_cast<u64>(lanes);
  }
}

}  // namespace

StaticLaunchCost compute_static_cost(const ir::Program& prog,
                                     const LaunchGeometry& geom,
                                     const sim::DeviceSpec& dev) {
  ISPB_EXPECTS(geom.image.x > 0 && geom.image.y > 0);
  StaticLaunchCost cost;

  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  const GridDims grid = make_grid(geom.image, geom.block);
  cost.blocks_total = grid.total();
  if (degenerate) {
    cost.degenerate = true;
    cost.exact = false;
    push_unique(cost.fallbacks,
                "degenerate partition: the runtime launches the naive kernel");
    return cost;
  }

  std::vector<ScenarioEval> evals;
  evals.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const RangeResult ranges = analyze_ranges(prog, facts);
    ScenarioEval ev;
    ev.scenario = s;
    ev.extraction = extract_affine(prog, facts);
    ev.path = trace_path(prog, ev.extraction, ranges);

    ScenarioSummary summary;
    summary.label = s.label;
    summary.region = s.region;
    summary.routed = s.routed;
    summary.complete = ev.path.complete;
    summary.poison_reason = ev.path.poison_reason;
    for (const PathAccess& a : ev.path.accesses) {
      if (a.countable) {
        ++summary.countable_accesses;
      } else {
        ++summary.fallback_accesses;
      }
    }
    cost.scenarios.push_back(std::move(summary));
    evals.push_back(std::move(ev));
  }

  const i32 threads = geom.block.threads();
  if (threads % dev.warp_size != 0) {
    // Partial warps run phantom lanes outside the scenario facts; nothing
    // provable. The generated benchmarks never use such blocks.
    cost.exact = false;
    push_unique(cost.fallbacks,
                "block size is not a multiple of the warp size: phantom lanes "
                "escape the scenario facts");
    return cost;
  }
  const i32 warps = ceil_div(threads, dev.warp_size);

  // Region attribution matches dsl::launch_on_sim: classify_block side mask.
  const BlockBounds bounds =
      compute_block_bounds(geom.image, geom.block, geom.window);

  std::unordered_set<i64> block_cache;
  for (i32 by = 0; by < grid.nby; ++by) {
    for (i32 bx = 0; bx < grid.nbx; ++bx) {
      const u32 key = static_cast<u32>(classify_block(bounds, bx, by));
      RegionStaticCost& rc = cost.per_region[key];
      ++rc.blocks;
      block_cache.clear();
      for (i32 w = 0; w < warps; ++w) {
        // First lane's tid.x selects the warp-column scenario; for
        // non-refined kernels the cell scenario's tx covers every lane.
        const i64 lane0_lx = (i64{w} * dev.warp_size) % geom.block.tx;
        const ScenarioEval* ev = nullptr;
        for (const ScenarioEval& cand : evals) {
          if (cand.scenario.bx.contains(bx) && cand.scenario.by.contains(by) &&
              cand.scenario.tx.contains(lane0_lx)) {
            ev = &cand;
            break;
          }
        }
        if (ev == nullptr) {
          rc.exact = false;
          push_unique(rc.fallbacks, "no scenario covers warp " +
                                        std::to_string(w) + " of block (" +
                                        std::to_string(bx) + "," +
                                        std::to_string(by) + ")");
          continue;
        }
        eval_warp(*ev, dev, geom.block, bx, by, w, block_cache, rc);
      }
    }
  }

  for (auto& [key, rc] : cost.per_region) {
    (void)key;
    rc.cycles = static_cycles(dev, rc.counters);
    cost.total += rc.counters;
    cost.total_cycles += rc.cycles;
    if (!rc.exact) {
      cost.exact = false;
      for (const std::string& r : rc.fallbacks) push_unique(cost.fallbacks, r);
    }
  }
  return cost;
}

StaticGain static_gain(const StaticLaunchCost& naive,
                       const StaticLaunchCost& isp, f64 occupancy_naive,
                       f64 occupancy_isp) {
  StaticGain g;
  if (isp.total_cycles > 0.0 && occupancy_naive > 0.0) {
    g.r_static = naive.total_cycles / isp.total_cycles;
    g.gain = g.r_static * (occupancy_isp / occupancy_naive);
  }
  g.use_isp = g.gain > 1.0;
  return g;
}

StaticGain3 static_gain3(const StaticLaunchCost& naive,
                         const StaticLaunchCost& isp,
                         const StaticLaunchCost& tiled, f64 occupancy_naive,
                         f64 occupancy_isp, f64 occupancy_tiled) {
  StaticGain3 g;
  g.isp = static_gain(naive, isp, occupancy_naive, occupancy_isp);
  if (tiled.total_cycles > 0.0 && occupancy_naive > 0.0) {
    g.gain_tiled = (naive.total_cycles / tiled.total_cycles) *
                   (occupancy_tiled / occupancy_naive);
  }
  g.best = codegen::Variant::kNaive;
  if (g.isp.use_isp) g.best = codegen::Variant::kIsp;
  if (g.gain_tiled > 1.0 && g.gain_tiled > g.isp.gain) {
    g.best = codegen::Variant::kIspTiled;
  }
  return g;
}

}  // namespace ispb::analysis

#include "ir/analysis/interval.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ispb::analysis {

using ir::Cmp;
using ir::Instr;
using ir::Op;
using ir::Type;

Interval join(Interval a, Interval b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval wrap_range(i64 lo, i64 hi) {
  if (lo < Interval::kMin || hi > Interval::kMax) return Interval::top();
  return {lo, hi};
}

Cmp negate_cmp(Cmp c) {
  switch (c) {
    case Cmp::kLt:
      return Cmp::kGe;
    case Cmp::kLe:
      return Cmp::kGt;
    case Cmp::kGt:
      return Cmp::kLe;
    case Cmp::kGe:
      return Cmp::kLt;
    case Cmp::kEq:
      return Cmp::kNe;
    case Cmp::kNe:
      return Cmp::kEq;
  }
  return c;
}

Cmp swap_cmp(Cmp c) {
  switch (c) {
    case Cmp::kLt:
      return Cmp::kGt;
    case Cmp::kLe:
      return Cmp::kGe;
    case Cmp::kGt:
      return Cmp::kLt;
    case Cmp::kGe:
      return Cmp::kLe;
    case Cmp::kEq:
    case Cmp::kNe:
      return c;
  }
  return c;
}

int decide_cmp(Cmp cmp, Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return -1;
  switch (cmp) {
    case Cmp::kLt:
      if (a.hi < b.lo) return 1;
      if (a.lo >= b.hi) return 0;
      return -1;
    case Cmp::kLe:
      if (a.hi <= b.lo) return 1;
      if (a.lo > b.hi) return 0;
      return -1;
    case Cmp::kGt:
      return decide_cmp(Cmp::kLt, b, a);
    case Cmp::kGe:
      return decide_cmp(Cmp::kLe, b, a);
    case Cmp::kEq:
      if (a.is_point() && a == b) return 1;
      if (meet(a, b).is_empty()) return 0;
      return -1;
    case Cmp::kNe: {
      const int eq = decide_cmp(Cmp::kEq, a, b);
      return eq < 0 ? -1 : 1 - eq;
    }
  }
  return -1;
}

Interval refine_cmp(Interval x, Cmp cmp, Interval y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  switch (cmp) {
    case Cmp::kLt:
      return meet(x, {Interval::kMin, y.hi - 1});
    case Cmp::kLe:
      return meet(x, {Interval::kMin, y.hi});
    case Cmp::kGt:
      return meet(x, {y.lo + 1, Interval::kMax});
    case Cmp::kGe:
      return meet(x, {y.lo, Interval::kMax});
    case Cmp::kEq:
      return meet(x, y);
    case Cmp::kNe: {
      if (!y.is_point()) return x;
      Interval r = x;
      if (r.lo == y.lo) ++r.lo;
      if (r.hi == y.lo) --r.hi;
      return r;
    }
  }
  return x;
}

namespace {

/// True when both operand ranges fit the 0/1 predicate domain.
bool pred_like(Interval a, Interval b) {
  return Interval::pred().contains(a) && Interval::pred().contains(b);
}

Interval transfer_div(Interval a, Interval b) {
  // Matches ir::eval_pure: truncating division, x/0 = 0, INT32_MIN/-1 =
  // INT32_MIN (the wrapped value).
  const auto divi = [](i64 x, i64 d) -> i64 {
    if (d == 0) return 0;
    if (d == -1 && x == Interval::kMin) return Interval::kMin;
    return x / d;
  };
  if (b.is_point()) {
    const i64 d = b.lo;
    if (d == 0) return Interval::point(0);
    Interval r{std::min(divi(a.lo, d), divi(a.hi, d)),
               std::max(divi(a.lo, d), divi(a.hi, d))};
    // INT32_MIN / -1 wraps to INT32_MIN and breaks the corner argument.
    if (d == -1 && a.contains(Interval::kMin)) r = join(r, Interval::top());
    return r;
  }
  if (b.lo > 0 || b.hi < 0) {
    // Truncating division is monotone in the dividend for a fixed divisor
    // sign, and |x/d| shrinks as |d| grows, so corners bound the result.
    i64 lo = Interval::kMax;
    i64 hi = Interval::kMin;
    for (const i64 x : {a.lo, a.hi}) {
      for (const i64 d : {b.lo, b.hi}) {
        const i64 v = divi(x, d);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    Interval r{lo, hi};
    if (b.contains(-1) && a.contains(Interval::kMin)) r = join(r, Interval::top());
    return r;
  }
  // Divisor range crosses 0: |result| <= |dividend|, plus 0 for x/0.
  const Interval mag = wrap_range(std::min({a.lo, -a.hi, i64{0}}),
                                  std::max({a.hi, -a.lo, i64{0}}));
  return mag;
}

Interval transfer_rem(Interval a, Interval b) {
  // C++ truncating remainder: result sign follows the dividend, |r| < |d|.
  // eval_pure defines x % 0 = 0 and INT32_MIN % -1 = 0.
  const i64 dmax = std::max(std::abs(b.lo), std::abs(b.hi));
  if (dmax == 0) return Interval::point(0);
  Interval r{-(dmax - 1), dmax - 1};
  if (a.lo >= 0) r.lo = 0;
  if (a.hi <= 0) r.hi = 0;
  r = meet(r, {std::min(a.lo, i64{0}), std::max(a.hi, i64{0})});
  return r;
}

Interval transfer_shr(Interval a, Interval b) {
  if (b.is_point()) {
    const i32 k = static_cast<i32>(static_cast<u32>(b.lo) & 31u);
    return {a.lo >> k, a.hi >> k};
  }
  // The effective shift is masked into [0, 31]; arithmetic shift moves any
  // value toward {-1, 0}, so the hull of shift-by-0 and shift-by-31 bounds
  // every intermediate amount.
  return {std::min(a.lo, a.lo >> 31), std::max(a.hi, a.hi >> 31)};
}

Interval transfer_bitwise(Op op, Interval a, Interval b) {
  if (pred_like(a, b)) {
    switch (op) {
      case Op::kAnd:
        return {a.lo == 1 && b.lo == 1 ? 1 : 0, std::min(a.hi, b.hi)};
      case Op::kOr:
        return {std::max(a.lo, b.lo), a.hi == 0 && b.hi == 0 ? 0 : 1};
      case Op::kXor:
        if (a.is_point() && b.is_point()) return Interval::point(a.lo ^ b.lo);
        return Interval::pred();
      default:
        break;
    }
  }
  if (op == Op::kXor && b.is_point() && b.lo == -1) {
    return {~a.hi, ~a.lo};  // ~x == -x - 1, exact and monotone decreasing
  }
  if (op == Op::kXor && a.is_point() && a.lo == -1) {
    return {~b.hi, ~b.lo};
  }
  if (op == Op::kAnd && a.lo >= 0 && b.lo >= 0) {
    return {0, std::min(a.hi, b.hi)};
  }
  if (a.is_point() && b.is_point()) {
    const u32 x = static_cast<u32>(static_cast<i32>(a.lo));
    const u32 y = static_cast<u32>(static_cast<i32>(b.lo));
    u32 v = 0;
    if (op == Op::kAnd) v = x & y;
    if (op == Op::kOr) v = x | y;
    if (op == Op::kXor) v = x ^ y;
    return Interval::point(static_cast<i32>(v));
  }
  return Interval::top();
}

}  // namespace

Interval transfer(const Instr& ins, Interval a, Interval b, Interval c) {
  if (a.is_empty() || b.is_empty() || c.is_empty()) return Interval::empty();

  // Float results: any 32-bit pattern, i.e. Top — except the structural ops
  // below whose result is bitwise one of the inputs regardless of type.
  const bool f32 = ins.type == Type::kF32;
  switch (ins.op) {
    case Op::kMov:
      return a;
    case Op::kSelp:
      return join(a, b);
    case Op::kSetp: {
      if (f32) return Interval::pred();
      const int d = decide_cmp(ins.cmp, a, b);
      return d < 0 ? Interval::pred() : Interval::point(d);
    }
    default:
      break;
  }
  if (f32) return Interval::top();

  switch (ins.op) {
    case Op::kAdd:
      return wrap_range(a.lo + b.lo, a.hi + b.hi);
    case Op::kSub:
      return wrap_range(a.lo - b.hi, a.hi - b.lo);
    case Op::kMul: {
      const i64 p1 = a.lo * b.lo;
      const i64 p2 = a.lo * b.hi;
      const i64 p3 = a.hi * b.lo;
      const i64 p4 = a.hi * b.hi;
      return wrap_range(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
    }
    case Op::kMad: {
      // Intermediate wraps cancel: the result equals (a*b + c) mod 2^32, so
      // it is exact whenever the exact range fits i32.
      const i64 p1 = a.lo * b.lo;
      const i64 p2 = a.lo * b.hi;
      const i64 p3 = a.hi * b.lo;
      const i64 p4 = a.hi * b.hi;
      return wrap_range(std::min({p1, p2, p3, p4}) + c.lo,
                        std::max({p1, p2, p3, p4}) + c.hi);
    }
    case Op::kDiv:
      return transfer_div(a, b);
    case Op::kRem:
      return transfer_rem(a, b);
    case Op::kMin:
      return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
    case Op::kMax:
      return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return transfer_bitwise(ins.op, a, b);
    case Op::kShl: {
      if (!b.is_point()) return Interval::top();
      const i32 k = static_cast<i32>(static_cast<u32>(b.lo) & 31u);
      return wrap_range(a.lo << k, a.hi << k);
    }
    case Op::kShr:
      return transfer_shr(a, b);
    case Op::kNeg:
      return wrap_range(-a.hi, -a.lo);
    case Op::kAbs:
      if (a.lo >= 0) return a;
      if (a.hi <= 0) return wrap_range(-a.hi, -a.lo);
      return wrap_range(0, std::max(-a.lo, a.hi));
    case Op::kCvt:
      // i32 <-> f32 conversions produce a value range we do not track
      // (float bit patterns / unknown float magnitudes).
      return ins.src_type == ins.type ? a : Interval::top();
    case Op::kEx2:
    case Op::kLg2:
    case Op::kRcp:
    case Op::kSqrt:
      return Interval::top();
    case Op::kMov:
    case Op::kSelp:
    case Op::kSetp:
    case Op::kLd:
    case Op::kSt:
    case Op::kSmemLd:
    case Op::kSmemSt:
    case Op::kBar:
    case Op::kBra:
    case Op::kRet:
      break;
  }
  throw ContractError("interval transfer called on unsupported opcode");
}

}  // namespace ispb::analysis

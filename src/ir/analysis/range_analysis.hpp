// Interval dataflow analysis over IR programs.
//
// A forward worklist analysis on the CFG of cfg.hpp with the domain of
// interval.hpp. The launcher-defined input registers (thread identity and
// kernel parameters) are seeded from caller-provided Facts; everything the
// program computes is propagated through the transfer functions, and
// conditional branches refine operand ranges along their outgoing edges
// (e.g. the fall-through edge of the iteration-space guard `gx < sx` caps
// gx at sx-1). Predicates are tracked symbolically as and/or trees of setp
// atoms so that the region-switch chain of Listing 3 and the guarded-load
// pattern of the Constant border mode both resolve.
//
// The result reports, per instruction, whether it is reachable under the
// facts and the value interval it produces — the substrate for the bounds /
// coverage / lint checkers in checkers.hpp.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "ir/analysis/cfg.hpp"
#include "ir/analysis/interval.hpp"

namespace ispb::analysis {

/// Caller-provided facts about one launch scenario.
struct Facts {
  /// Value interval per input register (specials then params, by register
  /// index); missing / short vectors default to Top.
  std::vector<Interval> inputs;
  /// Element count per bound buffer index; negative = unknown.
  std::vector<i64> buffer_sizes;

  /// Facts with every input unconstrained and all buffer sizes unknown.
  [[nodiscard]] static Facts unconstrained(const ir::Program& prog);

  /// Sets the interval of a special or parameter register by name; returns
  /// false (and changes nothing) when the program does not declare it.
  bool set_input(const ir::Program& prog, std::string_view name, Interval v);
};

/// Fixpoint analysis result.
struct RangeResult {
  Cfg cfg;
  /// Per pc: executable under the facts (CFG-reachable and on a feasible
  /// path — edges whose refinement is contradictory are pruned).
  std::vector<bool> reached;
  /// Per pc: interval of the destination register right after the
  /// instruction executes (empty when unreached or no destination).
  std::vector<Interval> def_out;
  /// Per pc: for ld/st, the interval of the address operand (empty
  /// otherwise / unreached).
  std::vector<Interval> addr;
  /// Per pc: for conditional branches, the predicate interval (empty
  /// otherwise / unreached). A point interval means the guard is provably
  /// constant — a residual check.
  std::vector<Interval> branch_pred;
};

/// Runs the analysis to a (widened) fixpoint. The program must pass
/// ir::verify.
[[nodiscard]] RangeResult analyze_ranges(const ir::Program& prog,
                                         const Facts& facts);

}  // namespace ispb::analysis

#include "ir/analysis/range_analysis.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace ispb::analysis {

using ir::Cmp;
using ir::Instr;
using ir::Op;
using ir::Operand;
using ir::RegId;
using ir::Type;

Facts Facts::unconstrained(const ir::Program& prog) {
  Facts f;
  f.inputs.assign(prog.num_inputs(), Interval::top());
  f.buffer_sizes.assign(prog.num_buffers, -1);
  return f;
}

bool Facts::set_input(const ir::Program& prog, std::string_view name,
                      Interval v) {
  for (u32 i = 0; i < prog.num_special(); ++i) {
    if (prog.special_names[i] == name) {
      if (inputs.size() < prog.num_inputs()) {
        inputs.resize(prog.num_inputs(), Interval::top());
      }
      inputs[i] = v;
      return true;
    }
  }
  for (u32 i = 0; i < prog.num_params(); ++i) {
    if (prog.param_names[i] == name) {
      if (inputs.size() < prog.num_inputs()) {
        inputs.resize(prog.num_inputs(), Interval::top());
      }
      inputs[prog.num_special() + i] = v;
      return true;
    }
  }
  return false;
}

namespace {

/// One atom of a symbolic predicate: `a cmp b` over i32 operands, possibly
/// negated. `pc` is the defining setp, used to reject refinements whose
/// operand registers may have been redefined since the compare.
struct PredAtom {
  Cmp cmp = Cmp::kLt;
  Operand a{};
  Operand b{};
  bool negate = false;
  u32 pc = 0;
};

/// A predicate register's symbolic value: the conjunction (kAnd) or
/// disjunction (kOr) of its atoms. Empty atoms = unknown predicate. `chain`
/// lists every register on the def chain from the root down to the setps;
/// the atoms only describe the register's value at uses where all of them
/// are definitely assigned (an unexecuted def leaves 0, not the compare).
struct PredInfo {
  enum class Shape : u8 { kAnd, kOr };
  Shape shape = Shape::kAnd;
  std::vector<PredAtom> atoms;
  std::vector<RegId> chain;
};

/// De Morgan negation; always representable in the and/or-of-literals form.
PredInfo negate(PredInfo info) {
  info.shape = info.shape == PredInfo::Shape::kAnd ? PredInfo::Shape::kOr
                                                   : PredInfo::Shape::kAnd;
  for (PredAtom& atom : info.atoms) atom.negate = !atom.negate;
  return info;
}

inline constexpr u32 kNoSlot = static_cast<u32>(-1);

/// Abstract machine state: one interval per *tracked* register (see
/// Analyzer::slot_). `dead` marks a contradictory path state (some register
/// has no possible value), i.e. the path is infeasible.
struct Env {
  std::vector<Interval> regs;
  bool dead = false;
};

class Analyzer {
 public:
  Analyzer(const ir::Program& prog, const Facts& facts)
      : prog_(prog), cfg_(build_cfg(prog)) {
    in_code_defs_.assign(prog.num_regs, 0);
    def_pc_.assign(prog.num_regs, kNoSlot);
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
      const Instr& ins = prog.code[pc];
      if (op_has_dst(ins.op)) {
        ++in_code_defs_[ins.dst];
        if (def_pc_[ins.dst] == kNoSlot) def_pc_[ins.dst] = pc;
      }
    }
    pred_info_.assign(prog.num_regs, std::nullopt);
    pred_info_done_.assign(prog.num_regs, false);
    assign_slots(facts);
    compute_heads();
    compute_assigned();
  }

  RangeResult run() {
    RangeResult result;
    const std::size_t n = prog_.code.size();
    result.reached.assign(n, false);
    result.def_out.assign(n, Interval::empty());
    result.addr.assign(n, Interval::empty());
    result.branch_pred.assign(n, Interval::empty());
    if (n == 0) {
      result.cfg = cfg_;
      return result;
    }

    block_in_.assign(cfg_.num_blocks(), std::nullopt);
    visits_.assign(cfg_.num_blocks(), 0);
    block_in_[0] = entry_;
    std::deque<u32> work{0};
    std::vector<bool> queued(cfg_.num_blocks(), false);
    queued[0] = true;

    while (!work.empty()) {
      const u32 b = work.front();
      work.pop_front();
      queued[b] = false;
      Env env = *block_in_[b];
      process_unit(b, env, nullptr);
      for (auto& [succ, out] : pending_edges_) {
        if (propagate(succ, out) && !queued[succ]) {
          queued[succ] = true;
          work.push_back(succ);
        }
      }
    }

    // Recording pass: walk every feasible unit once from its fixpoint
    // in-state and capture per-instruction intervals.
    for (u32 b = 0; b < cfg_.num_blocks(); ++b) {
      if (!head_[b] || !block_in_[b].has_value()) continue;
      Env env = *block_in_[b];
      process_unit(b, env, &result);
    }
    result.cfg = std::move(cfg_);
    return result;
  }

 private:
  // -- tracked-register compaction --------------------------------------
  /// Registers whose value can only ever be Top (float stencil arithmetic,
  /// loads, cross-type converts) are excluded from the environment: copies
  /// and joins then scale with the address/predicate slice of the program
  /// instead of its full register count.
  void assign_slots(const Facts& facts) {
    slot_.assign(prog_.num_regs, kNoSlot);
    const auto top_only_def = [](const Instr& ins) {
      switch (ins.op) {
        case Op::kLd:
        case Op::kEx2:
        case Op::kLg2:
        case Op::kRcp:
        case Op::kSqrt:
          return true;
        case Op::kCvt:
          return ins.src_type != ins.type;
        case Op::kMov:
        case Op::kSelp:
        case Op::kSetp:
          // Structural: the result is bitwise one of the operands (or 0/1).
          return false;
        default:
          return ins.type == Type::kF32;
      }
    };
    u32 next = 0;
    for (u32 r = 0; r < prog_.num_inputs(); ++r) slot_[r] = next++;
    for (const Instr& ins : prog_.code) {
      if (!op_has_dst(ins.op) || slot_[ins.dst] != kNoSlot) continue;
      if (!top_only_def(ins)) slot_[ins.dst] = next++;
    }
    // Registers whose every def is Top-producing keep kNoSlot. A register
    // with both kinds of defs got a slot above (Top flows through transfer).
    num_slots_ = next;

    entry_.regs.assign(num_slots_, Interval::top());
    for (u32 i = 0; i < prog_.num_inputs() && i < facts.inputs.size(); ++i) {
      entry_.regs[slot_[i]] = facts.inputs[i];
    }
  }

  [[nodiscard]] Interval get(const Env& env, RegId r) const {
    const u32 s = slot_[r];
    return s == kNoSlot ? Interval::top() : env.regs[s];
  }

  void set(Env& env, RegId r, Interval v) const {
    const u32 s = slot_[r];
    if (s == kNoSlot) return;
    env.regs[s] = v;
    if (v.is_empty()) env.dead = true;
  }

  // -- superblock chaining ----------------------------------------------
  /// A block is a unit head unless it has exactly one predecessor and that
  /// predecessor has exactly one successor — such chains (row boundaries,
  /// straight-line falls) are walked inline without storing or joining an
  /// in-state.
  void compute_heads() {
    head_.assign(cfg_.num_blocks(), true);
    for (u32 b = 0; b < cfg_.num_blocks(); ++b) {
      const BasicBlock& blk = cfg_.blocks[b];
      if (b != 0 && blk.pred.size() == 1 &&
          cfg_.blocks[blk.pred[0]].succ.size() == 1) {
        head_[b] = false;
      }
    }
  }

  // -- definite assignment ----------------------------------------------
  /// Forward must-analysis: which registers are assigned on EVERY path into
  /// each block. Single-def reasoning (re_eval, predicate atoms) is only
  /// sound where the definition provably executed — an unexecuted def
  /// leaves the register at its initial 0, not at the defined value.
  void compute_assigned() {
    const u32 nb = cfg_.num_blocks();
    da_words_ = (prog_.num_regs + 63) / 64;
    assigned_in_.assign(std::size_t{nb} * da_words_, ~u64{0});
    std::fill_n(assigned_in_.begin(), da_words_, u64{0});
    for (u32 r = 0; r < prog_.num_inputs(); ++r) {
      assigned_in_[r / 64] |= u64{1} << (r % 64);
    }
    std::deque<u32> work;
    std::vector<bool> queued(nb, false);
    for (u32 b = 0; b < nb; ++b) {
      work.push_back(b);
      queued[b] = true;
    }
    std::vector<u64> out(da_words_);
    while (!work.empty()) {
      const u32 b = work.front();
      work.pop_front();
      queued[b] = false;
      const auto in_b = assigned_in_.begin() + std::size_t{b} * da_words_;
      std::copy(in_b, in_b + da_words_, out.begin());
      const BasicBlock& blk = cfg_.blocks[b];
      for (u32 pc = blk.begin; pc < blk.end; ++pc) {
        const Instr& ins = prog_.code[pc];
        if (op_has_dst(ins.op)) out[ins.dst / 64] |= u64{1} << (ins.dst % 64);
      }
      for (const u32 s : blk.succ) {
        u64* sin = &assigned_in_[std::size_t{s} * da_words_];
        bool changed = false;
        for (u32 w = 0; w < da_words_; ++w) {
          const u64 met = sin[w] & out[w];
          if (met != sin[w]) {
            sin[w] = met;
            changed = true;
          }
        }
        if (changed && !queued[s]) {
          queued[s] = true;
          work.push_back(s);
        }
      }
    }
  }

  /// Is `r` assigned on every path reaching `use_pc`?
  [[nodiscard]] bool is_assigned(RegId r, u32 use_pc) const {
    if (is_input(r)) return true;
    const u32 b = cfg_.block_of[use_pc];
    if (assigned_in_[std::size_t{b} * da_words_ + r / 64] >> (r % 64) & 1) {
      return true;
    }
    const BasicBlock& blk = cfg_.blocks[b];
    for (u32 pc = use_pc; pc-- > blk.begin;) {
      const Instr& ins = prog_.code[pc];
      if (op_has_dst(ins.op) && ins.dst == r) return true;
    }
    return false;
  }

  // -- definition bookkeeping -------------------------------------------
  [[nodiscard]] bool is_input(RegId r) const { return r < prog_.num_inputs(); }

  /// One definition total: either an input never redefined in code, or a
  /// non-input defined exactly once.
  [[nodiscard]] bool single_def(RegId r) const {
    return is_input(r) ? in_code_defs_[r] == 0 : in_code_defs_[r] == 1;
  }

  /// True when the register provably holds the same value at `use_pc` as it
  /// did at `def_site`: single definition, or no redefinition on the
  /// straight line between the two pcs within one block.
  [[nodiscard]] bool stable_between(RegId r, u32 def_site, u32 use_pc) const {
    if (single_def(r)) return true;
    if (cfg_.block_of[def_site] != cfg_.block_of[use_pc]) return false;
    if (def_site > use_pc) return false;
    for (u32 pc = def_site + 1; pc < use_pc; ++pc) {
      const Instr& ins = prog_.code[pc];
      if (op_has_dst(ins.op) && ins.dst == r) return false;
    }
    return true;
  }

  // -- symbolic predicates ----------------------------------------------
  const std::optional<PredInfo>& pred_info(RegId r) {
    return pred_info_at(r, 0);
  }

  const std::optional<PredInfo>& pred_info_at(RegId r, int depth) {
    static const std::optional<PredInfo> kNone;
    if (pred_info_done_[r]) return pred_info_[r];
    if (depth > 16 || !single_def(r) || is_input(r)) return kNone;
    pred_info_done_[r] = true;

    const u32 pc = def_pc_[r];
    if (pc == kNoSlot) return pred_info_[r];
    const Instr& ins = prog_.code[pc];
    switch (ins.op) {
      case Op::kSetp: {
        if (ins.type == Type::kF32) break;  // cannot refine i32 ranges
        PredInfo info;
        info.atoms.push_back(PredAtom{ins.cmp, ins.a, ins.b, false, pc});
        info.chain.push_back(r);
        pred_info_[r] = std::move(info);
        break;
      }
      case Op::kXor: {
        // Predicate flip: p ^ 1 (the br_unless lowering).
        if (ins.a.is_reg() && ins.b.is_imm() && ins.b.imm.bits == 1) {
          const auto inner = pred_info_at(ins.a.reg, depth + 1);
          if (inner.has_value()) {
            pred_info_[r] = negate(*inner);
            pred_info_[r]->chain.push_back(r);
          }
        }
        break;
      }
      case Op::kAnd:
      case Op::kOr: {
        if (!ins.a.is_reg() || !ins.b.is_reg()) break;
        const auto shape = ins.op == Op::kAnd ? PredInfo::Shape::kAnd
                                              : PredInfo::Shape::kOr;
        const auto lhs = pred_info_at(ins.a.reg, depth + 1);
        const auto rhs = pred_info_at(ins.b.reg, depth + 1);
        if (!lhs.has_value() || !rhs.has_value()) break;
        const auto merges = [&](const PredInfo& p) {
          return p.shape == shape || p.atoms.size() == 1;
        };
        if (!merges(*lhs) || !merges(*rhs)) break;
        PredInfo info;
        info.shape = shape;
        info.atoms = lhs->atoms;
        info.atoms.insert(info.atoms.end(), rhs->atoms.begin(),
                          rhs->atoms.end());
        info.chain = lhs->chain;
        info.chain.insert(info.chain.end(), rhs->chain.begin(),
                          rhs->chain.end());
        info.chain.push_back(r);
        pred_info_[r] = std::move(info);
        break;
      }
      case Op::kMov: {
        if (ins.a.is_reg()) {
          const auto inner = pred_info_at(ins.a.reg, depth + 1);
          if (inner.has_value()) {
            pred_info_[r] = *inner;
            pred_info_[r]->chain.push_back(r);
          }
        }
        break;
      }
      default:
        break;
    }
    return pred_info_[r];
  }

  // -- evaluation helpers -----------------------------------------------
  /// True when the interval admits any nonzero value (Word::as_pred truth).
  [[nodiscard]] static bool may_be_true(Interval p) {
    return !p.is_empty() && !(p.lo == 0 && p.hi == 0);
  }

  [[nodiscard]] Interval value_of(const Operand& o, const Env& env) const {
    if (o.is_imm()) return Interval::point(o.imm.as_i32());
    ISPB_ASSERT(o.is_reg());
    return get(env, o.reg);
  }

  /// Re-evaluates an operand's defining chain under a (refined) environment,
  /// so that e.g. the reflected coordinate `~ix` of the Mirror pattern is
  /// recomputed from the branch-refined `ix` rather than read stale from the
  /// environment. Falls back to the environment value beyond single-def
  /// chains, the depth budget, or defs that may not have executed on every
  /// path to `use_pc`; the result is always met with the environment value.
  Interval re_eval(const Operand& o, const Env& env, u32 use_pc, int depth) {
    if (o.is_imm()) return Interval::point(o.imm.as_i32());
    ISPB_ASSERT(o.is_reg());
    const Interval from_env = get(env, o.reg);
    if (depth <= 0 || !single_def(o.reg) || is_input(o.reg) ||
        !is_assigned(o.reg, use_pc)) {
      return from_env;
    }
    const u32 pc = def_pc_[o.reg];
    if (pc == kNoSlot) return from_env;
    const Instr& ins = prog_.code[pc];
    if (!op_has_dst(ins.op) || ins.op == Op::kLd) return from_env;
    // An operand redefined between the chain instruction and the use held an
    // unknowable def-time value — its current environment interval does not
    // apply.
    const auto operand_val = [&](const Operand& oo) {
      if (oo.is_reg() && !stable_between(oo.reg, pc, use_pc)) {
        return Interval::top();
      }
      return re_eval(oo, env, use_pc, depth - 1);
    };
    const i32 arity = op_arity(ins.op);
    const Interval a = arity >= 1 ? operand_val(ins.a) : Interval::top();
    const Interval b = arity >= 2 ? operand_val(ins.b) : Interval::top();
    const Interval c = arity >= 3 ? operand_val(ins.c) : Interval::top();
    return meet(from_env, transfer(ins, a, b, c));
  }

  /// Applies one atom with the given truth value to the environment. Both
  /// operands must provably hold their setp-time values at `use_pc`,
  /// otherwise the comparison says nothing about the current environment.
  void apply_atom(Env& env, const PredAtom& atom, bool holds, u32 use_pc) {
    const auto stable = [&](const Operand& o) {
      return !o.is_reg() || stable_between(o.reg, atom.pc, use_pc);
    };
    if (!stable(atom.a) || !stable(atom.b)) return;
    const Cmp eff = holds != atom.negate ? atom.cmp : negate_cmp(atom.cmp);
    if (atom.a.is_reg()) {
      set(env, atom.a.reg,
          refine_cmp(get(env, atom.a.reg), eff, value_of(atom.b, env)));
    }
    if (atom.b.is_reg()) {
      set(env, atom.b.reg, refine_cmp(get(env, atom.b.reg), swap_cmp(eff),
                                      value_of(atom.a, env)));
    }
  }

  /// Refines `env` under "predicate register `r` is `holds`" at `use_pc`.
  /// The truth test is `bits != 0` (ir::Word::as_pred), so false pins the
  /// register to 0 unconditionally; true pins it to 1 only when the value is
  /// known to live in the 0/1 domain (a tracked predicate or a pred-shaped
  /// interval) and otherwise just excludes 0.
  void apply_pred(Env& env, RegId r, bool holds, u32 use_pc) {
    const auto& info = pred_info(r);
    const bool zero_one =
        info.has_value() || Interval::pred().contains(get(env, r));
    if (!holds) {
      set(env, r, meet(get(env, r), Interval::point(0)));
    } else if (zero_one) {
      set(env, r, meet(get(env, r), Interval::point(1)));
    } else {
      set(env, r, refine_cmp(get(env, r), Cmp::kNe, Interval::point(0)));
    }
    if (!info.has_value()) return;
    // The atoms describe the register only where the whole def chain down to
    // the setps executed; an unexecuted def leaves 0 regardless of the
    // comparison. (The 0/1-domain claim above survives either way: every
    // chain op maps 0/1 or unassigned-0 operands back into 0/1.)
    for (const RegId chain_reg : info->chain) {
      if (!is_assigned(chain_reg, use_pc)) return;
    }
    // AND true / OR false pin every atom; the single-atom case pins the one.
    const bool conj = info->shape == PredInfo::Shape::kAnd;
    if (holds == conj || info->atoms.size() == 1) {
      for (const PredAtom& atom : info->atoms) {
        apply_atom(env, atom, holds, use_pc);
      }
    }
  }

  // -- the transfer walk -------------------------------------------------
  /// Runs one unit — the head block `b` plus any single-entry chain hanging
  /// off it — over `env`. Successor out-states are collected into
  /// pending_edges_. When `result` is non-null the walk also records
  /// per-instruction intervals (the final reporting pass).
  void process_unit(u32 b, Env& env, RangeResult* result) {
    pending_edges_.clear();
    u32 cur = b;
    for (;;) {
      const BasicBlock& blk = cfg_.blocks[cur];
      for (u32 pc = blk.begin; pc < blk.end; ++pc) {
        if (env.dead) return;  // contradictory path state: dead code
        const Instr& ins = prog_.code[pc];
        if (result) result->reached[pc] = true;

        switch (ins.op) {
          case Op::kRet:
            return;
          case Op::kBra: {
            if (!ins.c.is_reg()) {
              const u32 s = cfg_.block_of[ins.target];
              if (!head_[s]) break;  // chain continues below
              pending_edges_.emplace_back(s, std::move(env));
              return;
            }
            const Interval p = get(env, ins.c.reg);
            if (result) result->branch_pred[pc] = p;
            // Taken edge (predicate true: any nonzero value).
            if (may_be_true(p)) {
              Env taken = env;
              apply_pred(taken, ins.c.reg, true, pc);
              if (!taken.dead) {
                pending_edges_.emplace_back(cfg_.block_of[ins.target],
                                            std::move(taken));
              }
            }
            // Fall-through edge (predicate false: value is exactly 0).
            if (p.contains(0) && pc + 1 < prog_.code.size()) {
              apply_pred(env, ins.c.reg, false, pc);
              if (!env.dead) {
                pending_edges_.emplace_back(cfg_.block_of[pc + 1],
                                            std::move(env));
              }
            }
            return;
          }
          case Op::kLd: {
            if (result) result->addr[pc] = value_of(ins.a, env);
            set(env, ins.dst, Interval::top());
            break;
          }
          case Op::kSt: {
            if (result) result->addr[pc] = value_of(ins.a, env);
            break;
          }
          case Op::kSmemLd: {
            // Loaded f32 value: untracked, like global loads.
            if (result) result->addr[pc] = value_of(ins.a, env);
            set(env, ins.dst, Interval::top());
            break;
          }
          case Op::kSmemSt: {
            if (result) result->addr[pc] = value_of(ins.a, env);
            break;
          }
          case Op::kBar:
            break;  // no dataflow effect
          case Op::kSelp: {
            const Interval p = value_of(ins.c, env);
            Interval out = Interval::empty();
            if (may_be_true(p)) {
              Env taken = env;
              if (ins.c.is_reg()) apply_pred(taken, ins.c.reg, true, pc);
              if (!taken.dead) {
                out = join(out, re_eval(ins.a, taken, pc, kReEvalDepth));
              }
            }
            if (p.contains(0)) {
              Env fall = env;
              if (ins.c.is_reg()) apply_pred(fall, ins.c.reg, false, pc);
              if (!fall.dead) {
                out = join(out, re_eval(ins.b, fall, pc, kReEvalDepth));
              }
            }
            set(env, ins.dst, out);
            break;
          }
          default: {
            const i32 arity = op_arity(ins.op);
            const Interval a =
                arity >= 1 ? value_of(ins.a, env) : Interval::top();
            const Interval bb =
                arity >= 2 ? value_of(ins.b, env) : Interval::top();
            const Interval c =
                arity >= 3 ? value_of(ins.c, env) : Interval::top();
            set(env, ins.dst, transfer(ins, a, bb, c));
            break;
          }
        }
        if (result && op_has_dst(ins.op)) {
          result->def_out[pc] = get(env, ins.dst);
        }
      }

      // End of block: continue the chain inline or emit the edge.
      const Instr& last = prog_.code[blk.end - 1];
      u32 next;
      if (last.op == Op::kBra && !last.is_conditional_branch()) {
        next = cfg_.block_of[last.target];
      } else if (blk.end < prog_.code.size()) {
        next = cfg_.block_of[blk.end];
      } else {
        return;
      }
      if (head_[next]) {
        pending_edges_.emplace_back(next, std::move(env));
        return;
      }
      cur = next;
    }
  }

  /// Joins `out` into the successor's in-state; widens after repeated
  /// visits so loops terminate. Returns true when the in-state grew.
  bool propagate(u32 succ, const Env& out) {
    ISPB_ASSERT(head_[succ]);
    if (!block_in_[succ].has_value()) {
      block_in_[succ] = out;
      ++visits_[succ];
      return true;
    }
    Env& in = *block_in_[succ];
    bool changed = false;
    const bool widen = visits_[succ] >= kWidenAfter;
    for (std::size_t s = 0; s < in.regs.size(); ++s) {
      const Interval joined = join(in.regs[s], out.regs[s]);
      if (joined == in.regs[s]) continue;
      changed = true;
      in.regs[s] = widen ? widen_interval(in.regs[s], joined) : joined;
    }
    if (changed) ++visits_[succ];
    return changed;
  }

  /// Widening: any bound that moved jumps to the domain extreme.
  [[nodiscard]] static Interval widen_interval(Interval old, Interval grown) {
    return {grown.lo < old.lo ? Interval::kMin : grown.lo,
            grown.hi > old.hi ? Interval::kMax : grown.hi};
  }

  static constexpr u32 kWidenAfter = 16;
  static constexpr int kReEvalDepth = 6;

  const ir::Program& prog_;
  Cfg cfg_;
  std::vector<u32> in_code_defs_;
  std::vector<u32> def_pc_;
  std::vector<std::optional<PredInfo>> pred_info_;
  std::vector<bool> pred_info_done_;
  std::vector<u32> slot_;
  u32 num_slots_ = 0;
  std::vector<bool> head_;
  std::vector<u64> assigned_in_;  ///< per-block definite-assignment bitsets
  u32 da_words_ = 0;
  Env entry_;
  std::vector<std::optional<Env>> block_in_;
  std::vector<u32> visits_;
  std::vector<std::pair<u32, Env>> pending_edges_;
};

}  // namespace

RangeResult analyze_ranges(const ir::Program& prog, const Facts& facts) {
  Analyzer analyzer(prog, facts);
  return analyzer.run();
}

}  // namespace ispb::analysis

// Affine memory-access extraction over IR kernels.
//
// Derives each load/store address as a (piecewise) affine function of the
// thread identity — tid.x, tid.y, ctaid.x, ctaid.y — with the kernel
// parameters substituted from launch Facts. The domain is deliberately
// richer than plain affine forms: border remapping compiles to min/max
// (Clamp), setp+selp (Mirror) and predicated loads (Constant), all of which
// are *piecewise* affine with affine-decidable guards, so a static analyzer
// restricted to single affine forms would lose exactly the accesses the
// paper's border regions are about. Only genuinely data-dependent shapes —
// the Repeat pattern's normalization loops (multiply-defined registers) and
// anything derived from loaded values — fall back to "non-affine", with the
// reason recorded rather than the access silently dropped.
//
// Soundness of the linear pass (extract_affine): ir::verify enforces
// linear-order def-before-use, so a register's value at a use site is the
// value of its unique preceding definition; registers with more than one
// definition (loop counters, in-place remapping) are conservatively
// non-affine everywhere in the linear view.
//
// On top of the per-register extraction, trace_path() linearizes the one
// concrete control path a launch scenario executes: branches the interval
// analysis proves constant are folded, forward branches with affine-decidable
// predicates become per-lane guard events (the iteration-space guards and the
// Constant pattern's predicated loads), and everything else poisons the
// remainder of the trace. Along that path the transfer functions are re-run
// flow-sensitively — each use sees its most recent on-path definition — so a
// register the linear pass demotes as multiply-defined (the Repeat wrap loops
// rewrite the pixel coordinates in place inside border sections) stays affine
// on paths that never execute the redefinition, e.g. the Body section. A
// redefinition under an active divergence guard is still demoted: after the
// rejoin the value differs per lane. The result is the substrate for the
// static transaction/divergence counting in static_cost.hpp.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ir/analysis/range_analysis.hpp"

namespace ispb::analysis {

/// An affine function of the thread identity:
///   c0 + c_tidx * tid.x + c_tidy * tid.y + c_bx * ctaid.x + c_by * ctaid.y
/// Coefficients are i64 so parameter-scaled terms never wrap during
/// extraction; the generated kernels only form addresses that fit i32.
struct AffineForm {
  i64 c0 = 0;
  i64 c_tidx = 0;
  i64 c_tidy = 0;
  i64 c_bx = 0;
  i64 c_by = 0;

  [[nodiscard]] static AffineForm constant(i64 v) { return {v, 0, 0, 0, 0}; }

  [[nodiscard]] bool is_constant() const {
    return c_tidx == 0 && c_tidy == 0 && c_bx == 0 && c_by == 0;
  }

  [[nodiscard]] i64 eval(i64 tidx, i64 tidy, i64 bx, i64 by) const {
    return c0 + c_tidx * tidx + c_tidy * tidy + c_bx * bx + c_by * by;
  }

  friend AffineForm operator+(const AffineForm& a, const AffineForm& b) {
    return {a.c0 + b.c0, a.c_tidx + b.c_tidx, a.c_tidy + b.c_tidy,
            a.c_bx + b.c_bx, a.c_by + b.c_by};
  }
  friend AffineForm operator-(const AffineForm& a, const AffineForm& b) {
    return {a.c0 - b.c0, a.c_tidx - b.c_tidx, a.c_tidy - b.c_tidy,
            a.c_bx - b.c_bx, a.c_by - b.c_by};
  }
  [[nodiscard]] AffineForm scaled(i64 k) const {
    return {c0 * k, c_tidx * k, c_tidy * k, c_bx * k, c_by * k};
  }
  friend constexpr bool operator==(const AffineForm&, const AffineForm&) =
      default;
};

/// A predicate expression whose truth value is decidable per lane once the
/// thread identity is concrete: comparisons of affine forms against zero,
/// combined with and/or/xor (the builder's br_unless lowers negation to
/// xor with 1). Everything the generated guards and the Constant pattern's
/// out-of-bounds predicates compile to lives in this language.
struct PredExpr {
  enum class Kind : u8 { kConst, kCmp, kAnd, kOr, kXor };

  Kind kind = Kind::kConst;
  bool value = false;    ///< kConst
  ir::Cmp cmp{};         ///< kCmp: form `cmp` 0
  AffineForm form{};     ///< kCmp
  std::vector<PredExpr> kids;  ///< kAnd/kOr/kXor: exactly two

  [[nodiscard]] static PredExpr constant(bool v) {
    PredExpr p;
    p.kind = Kind::kConst;
    p.value = v;
    return p;
  }
  [[nodiscard]] static PredExpr compare(ir::Cmp c, AffineForm f) {
    PredExpr p;
    p.kind = Kind::kCmp;
    p.cmp = c;
    p.form = f;
    return p;
  }
  [[nodiscard]] static PredExpr binary(Kind k, PredExpr a, PredExpr b);

  [[nodiscard]] bool eval(i64 tidx, i64 tidy, i64 bx, i64 by) const;
};

/// One piece of a piecewise-affine value: `form` applies where `guard`
/// holds. Pieces are ordered (first matching piece wins) and the last
/// piece's guard is always the constant true.
struct AffinePiece {
  PredExpr guard;
  AffineForm form;
};

/// A piecewise-affine i32 value. Single-piece values with a constant-true
/// guard are plain affine forms; min/max/selp/abs introduce additional
/// pieces. Piece counts are capped (kMaxPieces) — exceeding the cap demotes
/// the value to non-affine rather than blowing up.
struct AffineValue {
  std::vector<AffinePiece> pieces;

  static constexpr std::size_t kMaxPieces = 64;

  [[nodiscard]] static AffineValue single(AffineForm f) {
    AffineValue v;
    v.pieces.push_back({PredExpr::constant(true), f});
    return v;
  }
  [[nodiscard]] bool is_single() const { return pieces.size() == 1; }

  [[nodiscard]] i64 eval(i64 tidx, i64 tidy, i64 bx, i64 by) const;
};

/// Abstract value of one register after extraction.
struct AbstractValue {
  enum class Kind : u8 {
    kUnset,      ///< never defined (or an input we do not model)
    kAffine,     ///< piecewise-affine i32 value
    kPred,       ///< affine-decidable predicate
    kNonAffine,  ///< anything else; `reason` says why
  };
  Kind kind = Kind::kUnset;
  AffineValue affine;
  PredExpr pred;
  std::string reason;
  u32 reason_pc = static_cast<u32>(-1);
};

/// One ld/st site with its extracted address. Shared-memory accesses
/// (kSmemLd/kSmemSt) carry `smem = true` and index the per-block smem array
/// (Program::smem_words) instead of a bound buffer.
struct AccessSite {
  u32 pc = 0;
  bool is_load = true;
  bool smem = false;
  u8 buffer = 0;
  bool affine = false;
  AffineValue addr;     ///< valid when `affine`
  std::string reason;   ///< why not, when `!affine`
};

/// Result of the linear extraction pass over a whole program.
struct AffineExtraction {
  std::vector<AbstractValue> regs;   ///< per register
  std::vector<AccessSite> accesses;  ///< every ld/st, program order
};

/// Runs the forward extraction. Parameter registers whose Facts interval is
/// a point substitute as constants (make_launch_facts seeds every parameter
/// as a point); tid/ctaid specials stay symbolic regardless of their
/// intervals — they are the symbols of the affine space.
[[nodiscard]] AffineExtraction extract_affine(const ir::Program& prog,
                                              const Facts& facts);

/// A forward conditional branch whose predicate is affine-decidable but not
/// scenario-constant: lanes whose predicate evaluates true jump from
/// branch_pc to target, skipping the pcs in between. A lane executes pc iff
/// every guard event with branch_pc < pc < target evaluates false for it.
struct GuardEvent {
  u32 branch_pc = 0;
  u32 target = 0;
  PredExpr taken;
};

/// A maximal run of consecutively-traced pcs sharing one set of covering
/// guard events. The warp issues each pc of the segment exactly once iff at
/// least one lane's guards all evaluate false (min-pc reconvergence on
/// forward-only control).
struct PathSegment {
  u32 begin = 0;
  u32 end = 0;                  ///< one past the last traced pc
  std::vector<u32> guards;      ///< indices into KernelPath::guards
  /// Issue slots per simulator pipe class for the segment's instructions
  /// (indexed like sim::Pipe); lets static costing reproduce warp_cycles.
  std::array<u64, 7> per_pipe{};
};

/// One ld/st on the traced path (smem = shared-memory access).
struct PathAccess {
  u32 pc = 0;
  bool is_load = true;
  bool smem = false;
  u8 buffer = 0;
  bool countable = false;
  std::string reason;           ///< when !countable
  AffineValue addr;             ///< when countable
  std::vector<u32> guards;      ///< covering guard events (indices)
};

/// The single control path one launch scenario executes, linearized.
/// `complete` is false when the trace met control it cannot linearize — a
/// backward branch (the Repeat pattern's loops) or a branch whose predicate
/// is neither scenario-constant nor affine-decidable; accesses and segments
/// after the poison point are not recorded, and static counts for the
/// scenario are lower bounds rather than exact.
struct KernelPath {
  std::vector<PathAccess> accesses;
  std::vector<PathSegment> segments;
  std::vector<GuardEvent> guards;
  bool complete = true;
  std::string poison_reason;
  u32 poison_pc = static_cast<u32>(-1);
  u32 ret_pc = 0;
};

/// Traces the scenario path. `ranges` must come from analyze_ranges over the
/// same program and facts (it resolves the region-switch branches); the
/// extraction seeds the input registers (specials and point-valued params).
/// Register values along the path are re-derived flow-sensitively, so
/// addresses and branch predicates reflect the most recent on-path
/// definition rather than the linear extraction's multi-def conservatism.
[[nodiscard]] KernelPath trace_path(const ir::Program& prog,
                                    const AffineExtraction& extraction,
                                    const RangeResult& ranges);

}  // namespace ispb::analysis

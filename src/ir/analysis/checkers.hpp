// Static checkers over generated kernels (the analyzer's user-facing layer).
//
// Three checkers built on the interval dataflow of range_analysis.hpp:
//  - bounds:   every load/store address provably stays inside its buffer,
//              per region specialization (paper Section III-C's safety
//              claim, proven per launch geometry instead of tested),
//  - coverage: the region switch of Listing 3/5 routes every threadblock of
//              the grid to exactly one region section — no gap, no overlap,
//  - lint:     unreachable code, unused inputs/registers, and branch guards
//              that are provably constant (residual border checks).
//
// The checkers seed the analysis exactly like dsl::build_params seeds a real
// launch (same Eq. (2) block bounds, same Listing 5 warp bounds including the
// vacuous fallback), so a proof here is a statement about the code the
// simulator actually runs.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/partition.hpp"
#include "ir/analysis/range_analysis.hpp"

namespace ispb::analysis {

/// Launch geometry a kernel is checked against; mirrors the knobs of
/// dsl::launch_on_sim.
struct LaunchGeometry {
  Size2 image{};
  BlockSize block{};
  Window window{};
  i32 warp_width = 32;
};

inline constexpr u32 kNoPc = static_cast<u32>(-1);

enum class FindingKind : u8 {
  kOutOfBounds,        ///< a memory access may leave its buffer
  kCoverageGap,        ///< a grid cell reaches no region section
  kCoverageOverlap,    ///< a grid cell reaches the wrong / multiple sections
  kDegenerateGeometry, ///< partition unusable (runtime falls back to naive)
  kUnreachableCode,    ///< instructions no path reaches
  kUnusedInput,        ///< declared special/param register never read
  kUnusedRegister,     ///< computed value never used
  kConstantGuard,      ///< conditional branch provably always/never taken
  kDivergentBranch,    ///< branch not provably warp-uniform in a scenario
  kSmemUncovered,      ///< smem load reads a word no staging store wrote
  kBarrierDivergence,  ///< bar.sync not provably reached by every lane
};

[[nodiscard]] std::string_view to_string(FindingKind k);

struct Finding {
  FindingKind kind{};
  u32 pc = kNoPc;  ///< anchor instruction, when one exists
  std::string detail;
};

struct CheckReport {
  std::vector<Finding> findings;
  u32 scenarios = 0;         ///< launch scenarios analyzed
  u32 proven_accesses = 0;   ///< ld/st proven in-bounds across scenarios

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// One launch scenario: thread-identity intervals plus (for region-switch
/// kernels) the region its blocks must be routed to. Scenarios are the unit
/// of proof for every launch-aware checker: within one scenario the region
/// switch resolves to a single direction per branch.
struct Scenario {
  Interval bx, by, tx, ty;
  Region region = Region::kBody;
  bool routed = false;
  std::string label;
};

/// Enumerates the launch scenarios of a naive or fat kernel for a geometry:
/// one per partition grid cell, refined to one per warp column when the
/// program declares the Listing 5 warp bounds and they are enabled.
/// `degenerate` is set when the partition cannot be expressed by the
/// 9-region switch (the runtime falls back to the naive kernel then).
[[nodiscard]] std::vector<Scenario> enumerate_scenarios(
    const ir::Program& prog, const LaunchGeometry& geom, bool& degenerate);

/// [begin, end) of the section opened by `marker`: up to the next marker in
/// program order (the convention of measure_costs and the sim's attribution).
[[nodiscard]] std::pair<u32, u32> section_range(const ir::Program& prog,
                                                std::string_view marker);

/// Builds launch facts mirroring dsl::build_params: image extents, pitches
/// (Image<f32> row alignment), block extents, Eq. (2) block bounds and
/// Listing 5 warp bounds when the program declares them, plus the given
/// thread-identity intervals. Buffer sizes are set to the padded image size.
[[nodiscard]] Facts make_launch_facts(const ir::Program& prog,
                                      const LaunchGeometry& geom,
                                      Interval ctaid_x, Interval ctaid_y,
                                      Interval tid_x, Interval tid_y);

/// Proves every reachable load/store of a naive or fat (region-switch)
/// kernel in-bounds for the geometry, one scenario per partition grid cell
/// (and per warp column for warp-refined kernels).
[[nodiscard]] CheckReport check_bounds(const ir::Program& prog,
                                       const LaunchGeometry& geom);

/// Same proof for a standalone per-region kernel (generate_region_kernel),
/// launched on its region's block rectangle via boff_x/boff_y.
[[nodiscard]] CheckReport check_bounds_region(const ir::Program& prog,
                                              const LaunchGeometry& geom,
                                              Region region);

/// Proves the region switch partitions the blockIdx grid: the partition
/// cells tile the grid exactly, and each cell's blocks reach exactly the
/// region section classify_block/classify_warp assigns them. For kernels
/// without a region switch, checks that some marked section is reachable.
[[nodiscard]] CheckReport check_coverage(const ir::Program& prog,
                                         const LaunchGeometry& geom);

/// Proves the shared-memory staging discipline of a tiled kernel, per launch
/// scenario: every smem address stays inside Program::smem_words, and every
/// word a compute-phase smem load reads was written earlier on the traced
/// path — by the same lane, or by any lane with an intervening bar.sync
/// (store → barrier → load is the only cross-lane ordering the block
/// guarantees). Programs without smem ops pass trivially.
[[nodiscard]] CheckReport check_smem_coverage(const ir::Program& prog,
                                              const LaunchGeometry& geom);

/// Barrier-divergence lint, per launch scenario: every bar.sync on the traced
/// path must be control-independent of lane identity — a covering guard that
/// skips the barrier for some lanes of a block but not others deadlocks the
/// block (the simulator raises a ContractError). Conservative: a scenario the
/// tracer cannot linearize past a barrier is reported rather than assumed
/// uniform.
[[nodiscard]] CheckReport check_barriers(const ir::Program& prog,
                                         const LaunchGeometry& geom);

/// Structural lint: CFG-unreachable code, unused inputs, unused registers.
[[nodiscard]] CheckReport lint(const ir::Program& prog);

/// Lint under launch facts: adds conditional branches whose predicate is
/// provably constant (e.g. residual border checks specialization left
/// behind).
[[nodiscard]] CheckReport lint(const ir::Program& prog, const Facts& facts);

/// Static count of residual border guards inside one marker-delimited
/// section: conditional branches plus i32 select/min/max — the instruction
/// shapes border remapping compiles to, none of which the stencil arithmetic
/// itself (all f32) produces. The paper's specialization claim is that the
/// Body section counts zero.
[[nodiscard]] u32 count_residual_guards(const ir::Program& prog,
                                        std::string_view marker);

/// Debug-build verification gate run after ir::optimize(): throws
/// VerifyError when the optimized program still contains unreachable code or
/// unused registers (both are invariants the pass pipeline must establish).
void assert_optimized_clean(const ir::Program& prog);

}  // namespace ispb::analysis

#include "ir/analysis/checkers.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "image/image.hpp"
#include "ir/analysis/access_analysis.hpp"

namespace ispb::analysis {

using ir::Instr;
using ir::Op;
using ir::Type;

std::string_view to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kOutOfBounds:
      return "out-of-bounds";
    case FindingKind::kCoverageGap:
      return "coverage-gap";
    case FindingKind::kCoverageOverlap:
      return "coverage-overlap";
    case FindingKind::kDegenerateGeometry:
      return "degenerate-geometry";
    case FindingKind::kUnreachableCode:
      return "unreachable-code";
    case FindingKind::kUnusedInput:
      return "unused-input";
    case FindingKind::kUnusedRegister:
      return "unused-register";
    case FindingKind::kConstantGuard:
      return "constant-guard";
    case FindingKind::kDivergentBranch:
      return "divergent-branch";
    case FindingKind::kSmemUncovered:
      return "smem-uncovered";
    case FindingKind::kBarrierDivergence:
      return "barrier-divergence";
  }
  return "?";
}

namespace {

bool declares_param(const ir::Program& prog, std::string_view name) {
  return std::any_of(prog.param_names.begin(), prog.param_names.end(),
                     [&](const std::string& p) { return p == name; });
}

std::string interval_str(Interval v) {
  if (v.is_empty()) return "[]";
  return "[" + std::to_string(v.lo) + "," + std::to_string(v.hi) + "]";
}

/// Half-open index range [lo, hi) along one grid axis with the side its
/// blocks must check.
struct AxisCell {
  i32 lo = 0;
  i32 hi = 0;
  Side side = Side::kNone;
};

std::vector<AxisCell> axis_cells(i32 bh_lo, i32 bh_hi, i32 n, Side low,
                                 Side high) {
  const auto clamp = [n](i32 v) { return std::clamp(v, 0, n); };
  std::vector<AxisCell> cells;
  const AxisCell raw[3] = {{0, clamp(bh_lo), low},
                           {clamp(bh_lo), clamp(bh_hi), Side::kNone},
                           {clamp(bh_hi), n, high}};
  for (const AxisCell& c : raw) {
    if (c.lo < c.hi) cells.push_back(c);
  }
  return cells;
}

std::string cell_label(const AxisCell& cx, const AxisCell& cy) {
  return "bx=[" + std::to_string(cx.lo) + "," + std::to_string(cx.hi - 1) +
         "] by=[" + std::to_string(cy.lo) + "," + std::to_string(cy.hi - 1) +
         "]";
}

}  // namespace

std::pair<u32, u32> section_range(const ir::Program& prog,
                                  std::string_view marker) {
  const u32 begin = prog.marker_pc(marker);
  u32 end = static_cast<u32>(prog.code.size());
  for (const auto& [name, pc] : prog.markers) {
    (void)name;
    if (pc > begin && pc < end) end = pc;
  }
  return {begin, end};
}

std::vector<Scenario> enumerate_scenarios(const ir::Program& prog,
                                          const LaunchGeometry& geom,
                                          bool& degenerate) {
  degenerate = false;
  const GridDims grid = make_grid(geom.image, geom.block);
  const Interval tid_x_all = {0, geom.block.tx - 1};
  const Interval tid_y_all = {0, geom.block.ty - 1};

  if (!declares_param(prog, "bh_l")) {
    Scenario s;
    s.bx = {0, grid.nbx - 1};
    s.by = {0, grid.nby - 1};
    s.tx = tid_x_all;
    s.ty = tid_y_all;
    s.label = "full grid";
    return {s};
  }

  const BlockBounds bounds =
      compute_block_bounds(geom.image, geom.block, geom.window);
  if (bounds.bh_l > bounds.bh_r || bounds.bh_t > bounds.bh_b) {
    degenerate = true;
    return {};
  }

  WarpBounds wb;
  if (declares_param(prog, "w_l")) {
    wb = compute_warp_bounds(geom.image, geom.block, geom.window,
                             geom.warp_width);
  }

  std::vector<Scenario> scenarios;
  for (const AxisCell& cy : axis_cells(bounds.bh_t, bounds.bh_b, grid.nby,
                                       Side::kTop, Side::kBottom)) {
    for (const AxisCell& cx : axis_cells(bounds.bh_l, bounds.bh_r, grid.nbx,
                                         Side::kLeft, Side::kRight)) {
      const Side cell_sides = cx.side | cy.side;
      Scenario base;
      base.bx = {cx.lo, cx.hi - 1};
      base.by = {cy.lo, cy.hi - 1};
      base.ty = tid_y_all;
      base.routed = true;
      if (!wb.enabled) {
        base.tx = tid_x_all;
        base.region = region_from_sides(cell_sides);
        base.label = cell_label(cx, cy);
        scenarios.push_back(std::move(base));
        continue;
      }
      // Warp-refined kernel: one scenario per warp column, so the warp
      // index wx = tid.x >> log2(warp) folds to a point and the Listing 5
      // redirection resolves statically.
      for (i32 wx = 0; wx < wb.warps_x; ++wx) {
        Scenario s = base;
        s.tx = {i64{wx} * geom.warp_width,
                i64{wx + 1} * geom.warp_width - 1};
        s.region = region_from_sides(classify_warp(wb, cell_sides, wx));
        s.label = cell_label(cx, cy) + " wx=" + std::to_string(wx);
        scenarios.push_back(std::move(s));
      }
    }
  }
  return scenarios;
}

namespace {

/// Block rectangle of one region's sub-launch (dsl::launch_per_region).
Rect region_rect(const BlockBounds& bounds, const GridDims& grid, Region r) {
  const Side s = region_sides(r);
  const i32 x0 = has_side(s, Side::kLeft)    ? 0
                 : has_side(s, Side::kRight) ? bounds.bh_r
                                             : bounds.bh_l;
  const i32 x1 = has_side(s, Side::kLeft)    ? bounds.bh_l
                 : has_side(s, Side::kRight) ? grid.nbx
                                             : bounds.bh_r;
  const i32 y0 = has_side(s, Side::kTop)      ? 0
                 : has_side(s, Side::kBottom) ? bounds.bh_b
                                              : bounds.bh_t;
  const i32 y1 = has_side(s, Side::kTop)      ? bounds.bh_t
                 : has_side(s, Side::kBottom) ? grid.nby
                                              : bounds.bh_b;
  return Rect{x0, y0, x1, y1};
}

/// Appends bounds findings for every reached memory access of one analyzed
/// scenario.
void collect_access_findings(const ir::Program& prog, const Facts& facts,
                             const RangeResult& result,
                             const std::string& label, CheckReport& report) {
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    const bool smem = ins.op == Op::kSmemLd || ins.op == Op::kSmemSt;
    if (ins.op != Op::kLd && ins.op != Op::kSt && !smem) continue;
    if (!result.reached[pc]) continue;
    const i64 size = smem ? i64{prog.smem_words} : facts.buffer_sizes[ins.buffer];
    const Interval addr = result.addr[pc];
    if (!addr.is_empty() && addr.lo >= 0 && addr.hi < size) {
      ++report.proven_accesses;
      continue;
    }
    const bool is_load = ins.op == Op::kLd || ins.op == Op::kSmemLd;
    report.findings.push_back(Finding{
        FindingKind::kOutOfBounds, pc,
        "scenario " + label + ": " +
            (is_load ? std::string("load") : std::string("store")) +
            " address " + interval_str(addr) + " vs " +
            (smem ? "shared memory (" + std::to_string(prog.smem_words) +
                        " words)"
                  : "buffer " + std::to_string(ins.buffer) + " size " +
                        std::to_string(size))});
  }
}

}  // namespace

Facts make_launch_facts(const ir::Program& prog, const LaunchGeometry& geom,
                        Interval ctaid_x, Interval ctaid_y, Interval tid_x,
                        Interval tid_y) {
  ISPB_EXPECTS(geom.image.x > 0 && geom.image.y > 0);
  ISPB_EXPECTS(geom.block.tx > 0 && geom.block.ty > 0);
  Facts f = Facts::unconstrained(prog);

  const i32 pitch = round_up(geom.image.x, Image<f32>::kRowAlign);
  f.buffer_sizes.assign(prog.num_buffers, i64{pitch} * geom.image.y);

  f.set_input(prog, "tid.x", tid_x);
  f.set_input(prog, "tid.y", tid_y);
  f.set_input(prog, "ctaid.x", ctaid_x);
  f.set_input(prog, "ctaid.y", ctaid_y);

  f.set_input(prog, "sx", Interval::point(geom.image.x));
  f.set_input(prog, "sy", Interval::point(geom.image.y));
  for (const std::string& p : prog.param_names) {
    if (p.rfind("pitch_in", 0) == 0) {
      f.set_input(prog, p, Interval::point(pitch));
    }
  }
  f.set_input(prog, "pitch_out", Interval::point(pitch));
  f.set_input(prog, "ntid.x", Interval::point(geom.block.tx));
  f.set_input(prog, "ntid.y", Interval::point(geom.block.ty));

  if (declares_param(prog, "bh_l")) {
    const BlockBounds bounds =
        compute_block_bounds(geom.image, geom.block, geom.window);
    f.set_input(prog, "bh_l", Interval::point(bounds.bh_l));
    f.set_input(prog, "bh_r", Interval::point(bounds.bh_r));
    f.set_input(prog, "bh_t", Interval::point(bounds.bh_t));
    f.set_input(prog, "bh_b", Interval::point(bounds.bh_b));
  }
  if (declares_param(prog, "w_l")) {
    const WarpBounds wb = compute_warp_bounds(geom.image, geom.block,
                                              geom.window, geom.warp_width);
    // Vacuous fallback exactly as dsl::build_params: no warp may skip its
    // block's checks.
    f.set_input(prog, "w_l",
                Interval::point(wb.enabled ? wb.w_l : geom.block.tx));
    f.set_input(prog, "w_r", Interval::point(wb.enabled ? wb.w_r : 0));
  }
  return f;
}

CheckReport check_bounds(const ir::Program& prog, const LaunchGeometry& geom) {
  CheckReport report;
  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  if (degenerate) {
    report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; the runtime "
                "launches the naive kernel instead"});
    return report;
  }
  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const RangeResult result = analyze_ranges(prog, facts);
    collect_access_findings(prog, facts, result, s.label, report);
    ++report.scenarios;
  }
  return report;
}

CheckReport check_bounds_region(const ir::Program& prog,
                                const LaunchGeometry& geom, Region region) {
  ISPB_EXPECTS(declares_param(prog, "boff_x"));
  CheckReport report;
  const GridDims grid = make_grid(geom.image, geom.block);
  const BlockBounds bounds =
      compute_block_bounds(geom.image, geom.block, geom.window);
  if (bounds.bh_l > bounds.bh_r || bounds.bh_t > bounds.bh_b) {
    report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; per-region "
                "launches are not used"});
    return report;
  }
  const Rect rect = region_rect(bounds, grid, region);
  if (rect.empty()) return report;  // region never launched

  Facts facts =
      make_launch_facts(prog, geom, Interval{0, rect.width() - 1},
                        Interval{0, rect.height() - 1},
                        Interval{0, geom.block.tx - 1},
                        Interval{0, geom.block.ty - 1});
  facts.set_input(prog, "boff_x", Interval::point(rect.x0));
  facts.set_input(prog, "boff_y", Interval::point(rect.y0));

  const RangeResult result = analyze_ranges(prog, facts);
  collect_access_findings(prog, facts, result,
                          std::string(to_string(region)) + " sub-grid",
                          report);
  report.scenarios = 1;
  return report;
}

CheckReport check_coverage(const ir::Program& prog,
                           const LaunchGeometry& geom) {
  CheckReport report;
  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  if (degenerate) {
    report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; the runtime "
                "launches the naive kernel instead"});
    return report;
  }

  const bool switched = declares_param(prog, "bh_l");
  if (switched) {
    // The scenario cells must tile the blockIdx grid exactly (no gap, no
    // overlap at the grid level); cells are disjoint by construction, so an
    // area check suffices.
    const GridDims grid = make_grid(geom.image, geom.block);
    i64 covered = 0;
    for (const Scenario& s : scenarios) {
      // Warp-column scenarios share their cell's blocks; count each cell
      // once via its first column (tid.x starting at lane 0).
      if (s.tx.lo != 0) continue;
      covered += (s.bx.hi - s.bx.lo + 1) * (s.by.hi - s.by.lo + 1);
    }
    if (covered != grid.total()) {
      report.findings.push_back(
          Finding{FindingKind::kCoverageGap, kNoPc,
                  "partition cells cover " + std::to_string(covered) +
                      " blocks of a " + std::to_string(grid.total()) +
                      "-block grid"});
    }
  }

  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const RangeResult result = analyze_ranges(prog, facts);
    ++report.scenarios;

    const auto section_reached = [&](std::string_view marker) {
      const auto [begin, end] = section_range(prog, marker);
      for (u32 pc = begin; pc < end; ++pc) {
        if (result.reached[pc]) return true;
      }
      return false;
    };

    if (!s.routed) {
      // No region switch: some marked section must be executable.
      bool any = prog.markers.empty();
      for (const auto& [name, pc] : prog.markers) {
        (void)pc;
        if (name != "Exit" && section_reached(name)) any = true;
      }
      if (!any) {
        report.findings.push_back(Finding{FindingKind::kCoverageGap, kNoPc,
                                          "scenario " + s.label +
                                              ": no section is reachable"});
      }
      continue;
    }

    std::vector<Region> reached;
    for (Region r : kAllRegions) {
      if (section_reached(to_string(r))) reached.push_back(r);
    }
    if (reached.empty()) {
      report.findings.push_back(
          Finding{FindingKind::kCoverageGap, kNoPc,
                  "scenario " + s.label + ": no region section is reachable"});
      continue;
    }
    if (reached.size() != 1 || reached.front() != s.region) {
      std::string got;
      for (Region r : reached) {
        if (!got.empty()) got += ",";
        got += to_string(r);
      }
      report.findings.push_back(
          Finding{FindingKind::kCoverageOverlap, kNoPc,
                  "scenario " + s.label + ": expected region " +
                      std::string(to_string(s.region)) + ", switch reaches {" +
                      got + "}"});
    }
  }
  return report;
}

namespace {

/// True iff the lane with identity (tx, ty) in block (bx, by) executes an
/// instruction covered by `guards`: every covering guard event must evaluate
/// false (a true guard jumps the lane over the guarded range).
bool lane_executes(const KernelPath& path, const std::vector<u32>& guards,
                   i64 tx, i64 ty, i64 bx, i64 by) {
  for (const u32 g : guards) {
    if (path.guards[g].taken.eval(tx, ty, bx, by)) return false;
  }
  return true;
}

/// Representative block indices of a scenario. Smem addressing in generated
/// kernels is ctaid-invariant, but the checkers evaluate both corners of the
/// cell rather than assume it.
std::vector<std::pair<i64, i64>> scenario_corners(const Scenario& s) {
  std::vector<std::pair<i64, i64>> corners = {{s.bx.lo, s.by.lo}};
  if (s.bx.hi != s.bx.lo || s.by.hi != s.by.lo) {
    corners.emplace_back(s.bx.hi, s.by.hi);
  }
  return corners;
}

}  // namespace

CheckReport check_smem_coverage(const ir::Program& prog,
                                const LaunchGeometry& geom) {
  CheckReport report;
  if (prog.smem_words == 0) return report;  // no staging: trivially covered
  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  if (degenerate) {
    report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; the runtime "
                "launches the naive kernel instead"});
    return report;
  }

  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const AffineExtraction ex = extract_affine(prog, facts);
    const RangeResult ranges = analyze_ranges(prog, facts);
    const KernelPath path = trace_path(prog, ex, ranges);
    ++report.scenarios;

    bool touches_smem = false;
    for (const PathAccess& a : path.accesses) touches_smem |= a.smem;
    if (!path.complete) {
      // An incomplete trace with smem traffic on the prefix cannot order
      // stores against loads past the poison point. Scenarios whose prefix
      // never touches smem (the Repeat border loops) pass vacuously.
      if (touches_smem) {
        report.findings.push_back(
            Finding{FindingKind::kSmemUncovered, path.poison_pc,
                    "scenario " + s.label +
                        ": staging order not provable, path poisoned: " +
                        path.poison_reason});
      }
      continue;
    }
    if (!touches_smem) continue;

    // Barrier pcs on the traced path, in program order.
    std::vector<u32> bar_pcs;
    for (const PathSegment& seg : path.segments) {
      for (u32 pc = seg.begin; pc < seg.end; ++pc) {
        if (prog.code[pc].op == Op::kBar) bar_pcs.push_back(pc);
      }
    }

    for (const auto& [bx, by] : scenario_corners(s)) {
      // Replay the path: words stored by any lane become visible to every
      // lane at the next barrier; a lane always sees its own stores.
      std::set<i64> synced;   // stored by any lane before the last barrier
      std::set<i64> pending;  // stored since the last barrier
      std::map<std::pair<i64, i64>, std::set<i64>> own;
      std::size_t bar_cursor = 0;

      for (const PathAccess& acc : path.accesses) {
        while (bar_cursor < bar_pcs.size() && bar_pcs[bar_cursor] < acc.pc) {
          synced.insert(pending.begin(), pending.end());
          pending.clear();
          ++bar_cursor;
        }
        if (!acc.smem) continue;
        if (!acc.countable) {
          report.findings.push_back(
              Finding{FindingKind::kSmemUncovered, acc.pc,
                      "scenario " + s.label +
                          ": smem address not statically derivable: " +
                          acc.reason});
          continue;
        }
        bool reported = false;
        for (i64 ty = s.ty.lo; ty <= s.ty.hi && !reported; ++ty) {
          for (i64 tx = s.tx.lo; tx <= s.tx.hi && !reported; ++tx) {
            if (!lane_executes(path, acc.guards, tx, ty, bx, by)) continue;
            const i64 addr = acc.addr.eval(tx, ty, bx, by);
            if (addr < 0 || addr >= i64{prog.smem_words}) {
              report.findings.push_back(
                  Finding{FindingKind::kOutOfBounds, acc.pc,
                          "scenario " + s.label + ": lane (" +
                              std::to_string(tx) + "," + std::to_string(ty) +
                              ") smem address " + std::to_string(addr) +
                              " vs " + std::to_string(prog.smem_words) +
                              " words"});
              reported = true;
              continue;
            }
            if (!acc.is_load) {
              pending.insert(addr);
              own[{tx, ty}].insert(addr);
              continue;
            }
            if (synced.count(addr) != 0 || own[{tx, ty}].count(addr) != 0) {
              continue;
            }
            report.findings.push_back(
                Finding{FindingKind::kSmemUncovered, acc.pc,
                        "scenario " + s.label + ": lane (" +
                            std::to_string(tx) + "," + std::to_string(ty) +
                            ") block (" + std::to_string(bx) + "," +
                            std::to_string(by) + ") reads smem word " +
                            std::to_string(addr) +
                            " never staged before the preceding barrier"});
            reported = true;  // one example per access per scenario
          }
        }
        if (acc.is_load && !reported) ++report.proven_accesses;
      }
    }
  }
  return report;
}

CheckReport check_barriers(const ir::Program& prog,
                           const LaunchGeometry& geom) {
  CheckReport report;
  bool has_bar = false;
  for (const Instr& ins : prog.code) has_bar |= ins.op == Op::kBar;
  if (!has_bar) return report;
  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  if (degenerate) {
    report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; the runtime "
                "launches the naive kernel instead"});
    return report;
  }

  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const AffineExtraction ex = extract_affine(prog, facts);
    const RangeResult ranges = analyze_ranges(prog, facts);
    const KernelPath path = trace_path(prog, ex, ranges);
    ++report.scenarios;

    std::vector<bool> traced(prog.code.size(), false);
    for (const PathSegment& seg : path.segments) {
      for (u32 pc = seg.begin; pc < seg.end; ++pc) traced[pc] = true;
      for (u32 pc = seg.begin; pc < seg.end; ++pc) {
        if (prog.code[pc].op != Op::kBar) continue;
        if (seg.guards.empty()) {
          ++report.proven_accesses;
          continue;
        }
        bool divergent = false;
        for (const auto& [bx, by] : scenario_corners(s)) {
          i64 executing = 0;
          i64 total = 0;
          for (i64 ty = s.ty.lo; ty <= s.ty.hi; ++ty) {
            for (i64 tx = s.tx.lo; tx <= s.tx.hi; ++tx) {
              ++total;
              if (lane_executes(path, seg.guards, tx, ty, bx, by)) {
                ++executing;
              }
            }
          }
          if (executing != 0 && executing != total) {
            report.findings.push_back(
                Finding{FindingKind::kBarrierDivergence, pc,
                        "scenario " + s.label + ": block (" +
                            std::to_string(bx) + "," + std::to_string(by) +
                            ") reaches bar.sync with " +
                            std::to_string(executing) + " of " +
                            std::to_string(total) + " lanes"});
            divergent = true;
            break;
          }
        }
        if (!divergent) ++report.proven_accesses;
      }
    }

    if (!path.complete) {
      // Barriers the poisoned trace never reached cannot be proven uniform.
      for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        if (prog.code[pc].op != Op::kBar) continue;
        if (traced[pc] || !ranges.reached[pc]) continue;
        report.findings.push_back(
            Finding{FindingKind::kBarrierDivergence, pc,
                    "scenario " + s.label +
                        ": bar.sync beyond the traceable path (" +
                        path.poison_reason + "); uniformity not provable"});
      }
    }
  }
  return report;
}

CheckReport lint(const ir::Program& prog) {
  CheckReport report;
  report.scenarios = 0;

  const Cfg cfg = build_cfg(prog);
  for (u32 b = 0; b < cfg.num_blocks(); ++b) {
    if (cfg.reachable[b]) continue;
    const BasicBlock& blk = cfg.blocks[b];
    report.findings.push_back(
        Finding{FindingKind::kUnreachableCode, blk.begin,
                "instructions [" + std::to_string(blk.begin) + "," +
                    std::to_string(blk.end) + ") are unreachable"});
  }

  std::vector<u32> uses(prog.num_regs, 0);
  std::vector<u32> first_def(prog.num_regs, kNoPc);
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& ins = prog.code[pc];
    const auto count = [&](const ir::Operand& o) {
      if (o.is_reg()) ++uses[o.reg];
    };
    count(ins.a);
    count(ins.b);
    count(ins.c);
    if (op_has_dst(ins.op) && first_def[ins.dst] == kNoPc) {
      first_def[ins.dst] = pc;
    }
  }
  for (u32 r = 0; r < prog.num_inputs(); ++r) {
    if (uses[r] != 0) continue;
    const std::string name =
        r < prog.num_special()
            ? prog.special_names[r]
            : prog.param_names[r - prog.num_special()];
    report.findings.push_back(Finding{FindingKind::kUnusedInput, kNoPc,
                                      "input '" + name + "' is never read"});
  }
  for (u32 r = prog.num_inputs(); r < prog.num_regs; ++r) {
    if (first_def[r] == kNoPc || uses[r] != 0) continue;
    report.findings.push_back(
        Finding{FindingKind::kUnusedRegister, first_def[r],
                "r" + std::to_string(r) + " defined at pc " +
                    std::to_string(first_def[r]) + " is never used"});
  }
  return report;
}

CheckReport lint(const ir::Program& prog, const Facts& facts) {
  CheckReport report = lint(prog);
  const RangeResult result = analyze_ranges(prog, facts);
  report.scenarios = 1;
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    if (!prog.code[pc].is_conditional_branch()) continue;
    if (!result.reached[pc]) continue;
    const Interval p = result.branch_pred[pc];
    if (!p.is_point()) continue;
    report.findings.push_back(
        Finding{FindingKind::kConstantGuard, pc,
                std::string("guard at pc ") + std::to_string(pc) +
                    " is provably " +
                    (p.lo == 0 ? "never taken" : "always taken")});
  }
  return report;
}

u32 count_residual_guards(const ir::Program& prog, std::string_view marker) {
  const auto [begin, end] = section_range(prog, marker);
  u32 count = 0;
  for (u32 pc = begin; pc < end; ++pc) {
    const Instr& ins = prog.code[pc];
    switch (ins.op) {
      case Op::kBra:
        if (ins.is_conditional_branch()) ++count;
        break;
      case Op::kSetp:
        // For setp, `type` is the *operand* type; border checks compare i32
        // coordinates while stencil arithmetic never compares at all.
        if (ins.type == Type::kI32) ++count;
        break;
      case Op::kSelp:
      case Op::kMin:
      case Op::kMax:
        // i32 select/clamp only arises from border remapping; the stencil
        // computation itself is all f32.
        if (ins.type == Type::kI32) ++count;
        break;
      default:
        break;
    }
  }
  return count;
}

void assert_optimized_clean(const ir::Program& prog) {
  const CheckReport report = lint(prog);
  for (const Finding& f : report.findings) {
    if (f.kind != FindingKind::kUnreachableCode &&
        f.kind != FindingKind::kUnusedRegister) {
      continue;
    }
    throw VerifyError("optimized program '" + prog.name + "' fails lint (" +
                      std::string(to_string(f.kind)) + "): " + f.detail);
  }
}

}  // namespace ispb::analysis

// Control-flow graph recovery over flat IR programs.
//
// The optimizer passes only ever needed basic-block *leader* flags; the
// static analyzers need the full graph: blocks with explicit successor /
// predecessor edges and reachability from the entry, so that the interval
// dataflow can propagate along edges and the lint can report dead code.
#pragma once

#include <vector>

#include "ir/program.hpp"

namespace ispb::analysis {

/// A maximal straight-line run of instructions [begin, end). The terminator
/// (if any) is the last instruction; blocks without a branch/ret fall
/// through to the next block.
struct BasicBlock {
  u32 begin = 0;
  u32 end = 0;  ///< one past the last instruction
  std::vector<u32> succ;
  std::vector<u32> pred;
};

/// CFG of one program. Block 0 is the entry (pc 0).
struct Cfg {
  std::vector<BasicBlock> blocks;
  std::vector<u32> block_of;    ///< pc -> owning block index
  std::vector<bool> reachable;  ///< per block, from the entry

  [[nodiscard]] std::size_t num_blocks() const { return blocks.size(); }
};

/// Recovers basic blocks, edges and entry-reachability. The program must be
/// structurally valid (in-range branch targets); run ir::verify first when
/// in doubt.
[[nodiscard]] Cfg build_cfg(const ir::Program& prog);

}  // namespace ispb::analysis

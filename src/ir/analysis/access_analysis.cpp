#include "ir/analysis/access_analysis.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "gpusim/device.hpp"

namespace ispb::analysis {

using ir::Cmp;
using ir::Instr;
using ir::Op;
using ir::Type;

PredExpr PredExpr::binary(Kind k, PredExpr a, PredExpr b) {
  ISPB_EXPECTS(k == Kind::kAnd || k == Kind::kOr || k == Kind::kXor);
  PredExpr p;
  p.kind = k;
  p.kids.reserve(2);
  p.kids.push_back(std::move(a));
  p.kids.push_back(std::move(b));
  return p;
}

namespace {

bool apply_cmp(Cmp c, i64 v) {
  switch (c) {
    case Cmp::kLt:
      return v < 0;
    case Cmp::kLe:
      return v <= 0;
    case Cmp::kGt:
      return v > 0;
    case Cmp::kGe:
      return v >= 0;
    case Cmp::kEq:
      return v == 0;
    case Cmp::kNe:
      return v != 0;
  }
  return false;
}

PredExpr pred_not(PredExpr p) {
  return PredExpr::binary(PredExpr::Kind::kXor, std::move(p),
                          PredExpr::constant(true));
}

PredExpr pred_and(PredExpr a, PredExpr b) {
  if (a.kind == PredExpr::Kind::kConst) return a.value ? b : a;
  if (b.kind == PredExpr::Kind::kConst) return b.value ? a : b;
  return PredExpr::binary(PredExpr::Kind::kAnd, std::move(a), std::move(b));
}

}  // namespace

bool PredExpr::eval(i64 tidx, i64 tidy, i64 bx, i64 by) const {
  switch (kind) {
    case Kind::kConst:
      return value;
    case Kind::kCmp:
      return apply_cmp(cmp, form.eval(tidx, tidy, bx, by));
    case Kind::kAnd:
      return kids[0].eval(tidx, tidy, bx, by) &&
             kids[1].eval(tidx, tidy, bx, by);
    case Kind::kOr:
      return kids[0].eval(tidx, tidy, bx, by) ||
             kids[1].eval(tidx, tidy, bx, by);
    case Kind::kXor:
      return kids[0].eval(tidx, tidy, bx, by) !=
             kids[1].eval(tidx, tidy, bx, by);
  }
  return false;
}

i64 AffineValue::eval(i64 tidx, i64 tidy, i64 bx, i64 by) const {
  for (const AffinePiece& p : pieces) {
    if (p.guard.eval(tidx, tidy, bx, by)) return p.form.eval(tidx, tidy, bx, by);
  }
  ISPB_ASSERT(false);  // the last piece's guard is the constant true
  return 0;
}

namespace {

using AV = AbstractValue;

AV non_affine(std::string reason, u32 pc) {
  AV v;
  v.kind = AV::Kind::kNonAffine;
  v.reason = std::move(reason);
  v.reason_pc = pc;
  return v;
}

AV affine_value(AffineValue val) {
  AV v;
  v.kind = AV::Kind::kAffine;
  v.affine = std::move(val);
  return v;
}

AV pred_value(PredExpr p) {
  AV v;
  v.kind = AV::Kind::kPred;
  v.pred = std::move(p);
  return v;
}

/// Pairwise combine of two piecewise values under ordered first-match
/// semantics: pair (i, j) in lexicographic order is selected exactly when i
/// is the first matching piece of `a` and j the first of `b`, because every
/// earlier pair has a false conjunct.
template <typename F>
bool combine_pieces(const AffineValue& a, const AffineValue& b,
                    AffineValue& out, F&& emit) {
  for (const AffinePiece& pa : a.pieces) {
    for (const AffinePiece& pb : b.pieces) {
      PredExpr both = pred_and(pa.guard, pb.guard);
      emit(std::move(both), pa.form, pb.form, out);
      if (out.pieces.size() > AffineValue::kMaxPieces) return false;
    }
  }
  return true;
}

AV add_values(const AffineValue& a, const AffineValue& b, i64 sign, u32 pc) {
  AffineValue out;
  const bool ok = combine_pieces(
      a, b, out,
      [sign](PredExpr g, const AffineForm& fa, const AffineForm& fb,
             AffineValue& o) {
        o.pieces.push_back({std::move(g), sign > 0 ? fa + fb : fa - fb});
      });
  if (!ok) return non_affine("piecewise blow-up", pc);
  return affine_value(std::move(out));
}

AV minmax_values(const AffineValue& a, const AffineValue& b, bool is_min,
                 u32 pc) {
  AffineValue out;
  const bool ok = combine_pieces(
      a, b, out,
      [is_min](PredExpr g, const AffineForm& fa, const AffineForm& fb,
               AffineValue& o) {
        // min: a when a - b <= 0, else b (and symmetrically for max).
        PredExpr pick_a = pred_and(
            g, PredExpr::compare(is_min ? Cmp::kLe : Cmp::kGe, fa - fb));
        o.pieces.push_back({std::move(pick_a), fa});
        o.pieces.push_back({std::move(g), fb});
      });
  if (!ok) return non_affine("piecewise blow-up", pc);
  return affine_value(std::move(out));
}

/// dst = p ? a : b with an affine-decidable predicate: a's pieces guarded by
/// p come first; when p is false none of them match (their last guard is
/// And(p, true) == p) and evaluation falls through to b's pieces.
AV select_values(const PredExpr& p, const AffineValue& a, const AffineValue& b,
                 u32 pc) {
  AffineValue out;
  for (const AffinePiece& pa : a.pieces) {
    out.pieces.push_back({pred_and(p, pa.guard), pa.form});
  }
  for (const AffinePiece& pb : b.pieces) out.pieces.push_back(pb);
  if (out.pieces.size() > AffineValue::kMaxPieces) {
    return non_affine("piecewise blow-up", pc);
  }
  return affine_value(std::move(out));
}

/// Scale by a piecewise constant factor (or scale a constant by a piecewise
/// value). At least one side must be piece-wise constant.
AV mul_values(const AffineValue& a, const AffineValue& b, u32 pc) {
  const auto all_const = [](const AffineValue& v) {
    return std::all_of(v.pieces.begin(), v.pieces.end(),
                       [](const AffinePiece& p) { return p.form.is_constant(); });
  };
  const AffineValue* val = &a;
  const AffineValue* k = &b;
  if (!all_const(*k)) std::swap(val, k);
  if (!all_const(*k)) return non_affine("non-linear multiply", pc);
  AffineValue out;
  const bool ok = combine_pieces(
      *val, *k, out,
      [](PredExpr g, const AffineForm& fv, const AffineForm& fk,
         AffineValue& o) {
        o.pieces.push_back({std::move(g), fv.scaled(fk.c0)});
      });
  if (!ok) return non_affine("piecewise blow-up", pc);
  return affine_value(std::move(out));
}

/// Comparison of two piecewise values as a predicate: a first-match chain
///   (g_1 && c_1) || (!g_1 && ((g_2 && c_2) || ...))
/// over the lexicographic piece pairs, mirroring AffineValue::eval.
AV compare_values(Cmp cmp, const AffineValue& a, const AffineValue& b) {
  struct Case {
    PredExpr guard;
    PredExpr value;
  };
  std::vector<Case> cases;
  for (const AffinePiece& pa : a.pieces) {
    for (const AffinePiece& pb : b.pieces) {
      cases.push_back({pred_and(pa.guard, pb.guard),
                       PredExpr::compare(cmp, pa.form - pb.form)});
    }
  }
  ISPB_ASSERT(!cases.empty());
  PredExpr chain = cases.back().value;  // last guard is constant true
  for (auto it = cases.rbegin() + 1; it != cases.rend(); ++it) {
    chain = PredExpr::binary(
        PredExpr::Kind::kOr, pred_and(it->guard, it->value),
        pred_and(pred_not(it->guard), std::move(chain)));
  }
  return pred_value(std::move(chain));
}

class Extractor {
 public:
  Extractor(const ir::Program& prog, const Facts& facts)
      : prog_(prog), result_{} {
    result_.regs.resize(prog.num_regs);
    seed(facts);
    count_defs();
  }

  /// Path-mode constructor: carries over only the input registers (specials
  /// and params) from an existing extraction; every other register starts
  /// kUnset and is populated by step() as the trace executes its definition.
  Extractor(const ir::Program& prog, const AffineExtraction& seeds)
      : prog_(prog), result_{} {
    result_.regs.resize(prog.num_regs);
    const u32 n = std::min<u32>(prog.num_inputs(),
                                static_cast<u32>(seeds.regs.size()));
    for (u32 r = 0; r < n; ++r) result_.regs[r] = seeds.regs[r];
  }

  /// Reads an operand against the current (path-mode) register state.
  AV read(const ir::Operand& o, u32 pc, bool as_pred) const {
    return operand(o, pc, as_pred);
  }

  /// Applies one instruction's transfer function in path order, overwriting
  /// any previous definition (flow-sensitive: the path's most recent def
  /// wins). Exception: a redefinition while divergence guards are active is
  /// demoted — lanes parked at the guard keep the old value past the rejoin,
  /// so no single abstract value is valid for the whole warp.
  void step(u32 pc, bool under_guard) {
    const Instr& ins = prog_.code[pc];
    if (!ir::op_has_dst(ins.op)) return;
    AV v = transfer(pc, ins);
    if (under_guard && result_.regs[ins.dst].kind != AV::Kind::kUnset) {
      v = non_affine("redefinition under a divergence guard", pc);
    }
    result_.regs[ins.dst] = std::move(v);
  }

  AffineExtraction run() {
    for (u32 pc = 0; pc < prog_.code.size(); ++pc) {
      const Instr& ins = prog_.code[pc];
      if (ins.op == Op::kLd || ins.op == Op::kSt || ins.op == Op::kSmemLd ||
          ins.op == Op::kSmemSt) {
        record_access(pc, ins);
      }
      if (!ir::op_has_dst(ins.op)) continue;
      if (def_count_[ins.dst] > 1) {
        // Loop-carried or predicated re-definition: no single linear value.
        result_.regs[ins.dst] = non_affine("multiply defined register", pc);
        continue;
      }
      result_.regs[ins.dst] = transfer(pc, ins);
    }
    return std::move(result_);
  }

 private:
  void seed(const Facts& facts) {
    for (u32 r = 0; r < prog_.num_special(); ++r) {
      const std::string& name = prog_.special_names[r];
      AffineForm f;
      if (name == "tid.x") {
        f.c_tidx = 1;
      } else if (name == "tid.y") {
        f.c_tidy = 1;
      } else if (name == "ctaid.x") {
        f.c_bx = 1;
      } else if (name == "ctaid.y") {
        f.c_by = 1;
      } else {
        result_.regs[r] = non_affine("unknown special '" + name + "'", 0);
        continue;
      }
      result_.regs[r] = affine_value(AffineValue::single(f));
    }
    for (u32 r = prog_.num_special(); r < prog_.num_inputs(); ++r) {
      const Interval v = r < facts.inputs.size() ? facts.inputs[r]
                                                 : Interval::top();
      if (v.is_point()) {
        result_.regs[r] =
            affine_value(AffineValue::single(AffineForm::constant(v.lo)));
      } else {
        result_.regs[r] = non_affine(
            "parameter '" + prog_.param_names[r - prog_.num_special()] +
                "' is not point-valued",
            0);
      }
    }
  }

  void count_defs() {
    def_count_.assign(prog_.num_regs, 0);
    for (const Instr& ins : prog_.code) {
      if (ir::op_has_dst(ins.op)) ++def_count_[ins.dst];
    }
  }

  AV operand(const ir::Operand& o, u32 pc, bool as_pred) const {
    if (o.is_imm()) {
      if (as_pred) return pred_value(PredExpr::constant(o.imm.as_pred()));
      return affine_value(
          AffineValue::single(AffineForm::constant(o.imm.as_i32())));
    }
    if (!o.is_reg()) return non_affine("missing operand", pc);
    return result_.regs[o.reg];
  }

  void record_access(u32 pc, const Instr& ins) {
    AccessSite site;
    site.pc = pc;
    site.is_load = ins.op == Op::kLd || ins.op == Op::kSmemLd;
    site.smem = ins.op == Op::kSmemLd || ins.op == Op::kSmemSt;
    site.buffer = site.smem ? u8{0} : ins.buffer;
    const AV addr = operand(ins.a, pc, /*as_pred=*/false);
    if (addr.kind == AV::Kind::kAffine) {
      site.affine = true;
      site.addr = addr.affine;
    } else {
      site.affine = false;
      site.reason = addr.kind == AV::Kind::kNonAffine
                        ? addr.reason
                        : std::string("address register has no value");
    }
    result_.accesses.push_back(std::move(site));
  }

  AV transfer(u32 pc, const Instr& ins) {
    // Only i32 values and predicates are modeled; every f32 producer —
    // including the stencil arithmetic and loaded pixels — is non-affine.
    if (ins.op == Op::kLd) return non_affine("loaded value", pc);
    if (ins.op == Op::kSmemLd) {
      return non_affine("value loaded from shared memory", pc);
    }
    if (ins.type == Type::kF32 && ins.op != Op::kSetp) {
      return non_affine("f32 value", pc);
    }
    if (ins.type == Type::kPred) return transfer_pred(pc, ins);

    const auto aff = [&](const ir::Operand& o) { return operand(o, pc, false); };
    const auto need = [&](const AV& v) { return v.kind == AV::Kind::kAffine; };

    switch (ins.op) {
      case Op::kMov: {
        AV a = aff(ins.a);
        return need(a) ? a : non_affine(a.reason, pc);
      }
      case Op::kAdd:
      case Op::kSub: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        if (!need(a) || !need(b)) return non_affine("non-affine operand", pc);
        return add_values(a.affine, b.affine, ins.op == Op::kAdd ? 1 : -1, pc);
      }
      case Op::kMul: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        if (!need(a) || !need(b)) return non_affine("non-affine operand", pc);
        return mul_values(a.affine, b.affine, pc);
      }
      case Op::kMad: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        const AV c = aff(ins.c);
        if (!need(a) || !need(b) || !need(c)) {
          return non_affine("non-affine operand", pc);
        }
        AV prod = mul_values(a.affine, b.affine, pc);
        if (!need(prod)) return prod;
        return add_values(prod.affine, c.affine, 1, pc);
      }
      case Op::kShl: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        if (!need(a) || !need(b)) return non_affine("non-affine operand", pc);
        if (!b.affine.is_single() || !b.affine.pieces[0].form.is_constant()) {
          return non_affine("variable shift", pc);
        }
        const i64 k = b.affine.pieces[0].form.c0 & 31;
        return mul_values(a.affine,
                          AffineValue::single(AffineForm::constant(i64{1} << k)),
                          pc);
      }
      case Op::kNeg: {
        const AV a = aff(ins.a);
        if (!need(a)) return non_affine("non-affine operand", pc);
        return mul_values(a.affine,
                          AffineValue::single(AffineForm::constant(-1)), pc);
      }
      case Op::kAbs: {
        const AV a = aff(ins.a);
        if (!need(a)) return non_affine("non-affine operand", pc);
        // |x| = max(x, -x)
        AV neg = mul_values(a.affine,
                            AffineValue::single(AffineForm::constant(-1)), pc);
        if (!need(neg)) return neg;
        return minmax_values(a.affine, neg.affine, /*is_min=*/false, pc);
      }
      case Op::kMin:
      case Op::kMax: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        if (!need(a) || !need(b)) return non_affine("non-affine operand", pc);
        return minmax_values(a.affine, b.affine, ins.op == Op::kMin, pc);
      }
      case Op::kSelp: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        const AV c = operand(ins.c, pc, true);
        if (!need(a) || !need(b)) return non_affine("non-affine operand", pc);
        if (c.kind != AV::Kind::kPred) {
          return non_affine("undecidable select predicate", pc);
        }
        return select_values(c.pred, a.affine, b.affine, pc);
      }
      case Op::kXor: {
        // ~x compiles to x ^ -1, which is affine: -x - 1.
        const AV a = aff(ins.a);
        if (need(a) && ins.b.is_imm() && ins.b.imm.as_i32() == -1) {
          AV neg = mul_values(a.affine,
                              AffineValue::single(AffineForm::constant(-1)), pc);
          if (neg.kind != AV::Kind::kAffine) return neg;
          return add_values(neg.affine,
                            AffineValue::single(AffineForm::constant(-1)), 1,
                            pc);
        }
        return non_affine("bitwise operation", pc);
      }
      case Op::kSetp: {
        const AV a = aff(ins.a);
        const AV b = aff(ins.b);
        if (!need(a) || !need(b)) {
          return non_affine("undecidable comparison operand", pc);
        }
        return compare_values(ins.cmp, a.affine, b.affine);
      }
      default:
        return non_affine(std::string("opcode ") +
                              std::string(ir::op_keyword(ins.op)) +
                              " outside the affine fragment",
                          pc);
    }
  }

  AV transfer_pred(u32 pc, const Instr& ins) {
    const auto prd = [&](const ir::Operand& o) { return operand(o, pc, true); };
    switch (ins.op) {
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor: {
        const AV a = prd(ins.a);
        const AV b = prd(ins.b);
        if (a.kind != AV::Kind::kPred || b.kind != AV::Kind::kPred) {
          return non_affine("undecidable predicate operand", pc);
        }
        const PredExpr::Kind k = ins.op == Op::kAnd   ? PredExpr::Kind::kAnd
                                 : ins.op == Op::kOr ? PredExpr::Kind::kOr
                                                     : PredExpr::Kind::kXor;
        return pred_value(PredExpr::binary(k, a.pred, b.pred));
      }
      case Op::kMov:
      case Op::kSelp: {
        const AV a = prd(ins.a);
        if (ins.op == Op::kMov) {
          return a.kind == AV::Kind::kPred
                     ? a
                     : non_affine("undecidable predicate operand", pc);
        }
        const AV b = prd(ins.b);
        const AV c = prd(ins.c);
        if (a.kind != AV::Kind::kPred || b.kind != AV::Kind::kPred ||
            c.kind != AV::Kind::kPred) {
          return non_affine("undecidable predicate operand", pc);
        }
        // c ? a : b == (c && a) || (!c && b)
        return pred_value(PredExpr::binary(
            PredExpr::Kind::kOr, pred_and(c.pred, a.pred),
            pred_and(pred_not(c.pred), b.pred)));
      }
      default:
        return non_affine("predicate-typed opcode outside the fragment", pc);
    }
  }

  const ir::Program& prog_;
  AffineExtraction result_;
  std::vector<u32> def_count_;
};

}  // namespace

AffineExtraction extract_affine(const ir::Program& prog, const Facts& facts) {
  return Extractor(prog, facts).run();
}

KernelPath trace_path(const ir::Program& prog,
                      const AffineExtraction& extraction,
                      const RangeResult& ranges) {
  static_assert(static_cast<std::size_t>(sim::Pipe::kSmem) + 1 == 7,
                "PathSegment::per_pipe mirrors sim::Pipe");
  KernelPath path;

  // Flow-sensitive register state along the path: seeded from the linear
  // extraction's input registers, every other definition applied as the
  // trace passes it. This keeps registers the linear pass demotes as
  // multiply-defined (the Repeat wrap loops mutate coordinates in place in
  // border sections) affine on paths that skip the redefinitions.
  Extractor state(prog, extraction);

  std::vector<u32> active;  // indices into path.guards, targets not yet hit
  u32 seg_begin = 0;
  std::array<u64, 7> per_pipe{};
  bool poisoned = false;

  const auto poison = [&](u32 pc, std::string reason) {
    if (poisoned) return;
    poisoned = true;
    path.complete = false;
    path.poison_pc = pc;
    path.poison_reason = std::move(reason);
  };

  const auto close_segment = [&](u32 end) {
    if (poisoned) return;
    if (end > seg_begin) {
      PathSegment seg;
      seg.begin = seg_begin;
      seg.end = end;
      seg.guards = active;
      seg.per_pipe = per_pipe;
      path.segments.push_back(std::move(seg));
    }
    per_pipe = {};
  };

  // Follow a (resolved or unconditional) jump. Jumping past a pending guard
  // target would interleave with parked lanes min-pc style, which the
  // linear trace cannot express.
  const auto jump_ok = [&](u32 target) {
    return std::all_of(active.begin(), active.end(), [&](u32 g) {
      return path.guards[g].target >= target;
    });
  };

  u32 pc = 0;
  for (std::size_t steps = 0; steps <= prog.code.size(); ++steps) {
    // Rejoin: guard intervals are (branch_pc, target) — lanes that took the
    // branch participate again from the target on.
    bool rejoined = false;
    for (std::size_t i = active.size(); i-- > 0;) {
      if (path.guards[active[i]].target == pc) {
        if (!rejoined) close_segment(pc);
        rejoined = true;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (rejoined) seg_begin = pc;

    const Instr& ins = prog.code[pc];

    if (ins.op == Op::kRet) {
      close_segment(pc);
      path.ret_pc = pc;
      return path;
    }

    ++per_pipe[static_cast<std::size_t>(sim::pipe_class(ins.op, ins.type))];

    if (ins.op == Op::kLd || ins.op == Op::kSt || ins.op == Op::kSmemLd ||
        ins.op == Op::kSmemSt) {
      const AbstractValue addr = state.read(ins.a, pc, /*as_pred=*/false);
      PathAccess acc;
      acc.pc = pc;
      acc.is_load = ins.op == Op::kLd || ins.op == Op::kSmemLd;
      acc.smem = ins.op == Op::kSmemLd || ins.op == Op::kSmemSt;
      acc.buffer = acc.smem ? u8{0} : ins.buffer;
      if (poisoned) {
        acc.countable = false;
        acc.reason = "after unanalyzable control (" + path.poison_reason + ")";
      } else if (addr.kind == AbstractValue::Kind::kAffine) {
        acc.countable = true;
        acc.addr = addr.affine;
        acc.guards = active;
      } else {
        acc.countable = false;
        acc.reason = addr.kind == AbstractValue::Kind::kNonAffine
                         ? addr.reason
                         : std::string("address register has no on-path value");
      }
      path.accesses.push_back(std::move(acc));
      state.step(pc, !active.empty());  // a load defines its (f32) dst
      ++pc;
      continue;
    }

    if (ins.op != Op::kBra) {
      state.step(pc, !active.empty());
      ++pc;
      continue;
    }

    // Branches.
    if (!ins.is_conditional_branch()) {
      if (ins.target <= pc) {
        poison(pc, "backward branch");
        ++pc;
        continue;
      }
      if (!jump_ok(ins.target)) {
        poison(pc, "jump past a pending guard target");
        ++pc;
        continue;
      }
      close_segment(pc + 1);
      pc = ins.target;
      seg_begin = pc;
      continue;
    }

    const Interval bp = ranges.branch_pred[pc];
    if (!bp.is_empty() && bp.is_point()) {
      // Scenario-constant: every lane reaching the branch goes one way.
      if (bp.lo != 0) {
        if (ins.target <= pc) {
          poison(pc, "backward branch");
          ++pc;
          continue;
        }
        if (!jump_ok(ins.target)) {
          poison(pc, "jump past a pending guard target");
          ++pc;
          continue;
        }
        close_segment(pc + 1);
        pc = ins.target;
        seg_begin = pc;
      } else {
        ++pc;
      }
      continue;
    }

    const AbstractValue pv = state.read(ins.c, pc, /*as_pred=*/true);
    if (pv.kind == AbstractValue::Kind::kPred && ins.target > pc) {
      GuardEvent ev;
      ev.branch_pc = pc;
      ev.target = ins.target;
      ev.taken = pv.pred;
      close_segment(pc + 1);
      path.guards.push_back(std::move(ev));
      active.push_back(static_cast<u32>(path.guards.size() - 1));
      seg_begin = pc + 1;
      ++pc;
      continue;
    }

    poison(pc, ins.target <= pc ? "data-dependent loop"
                                : "undecidable branch predicate");
    ++pc;
  }
  // A verified program ends in ret; the forward-only walk must reach it.
  throw ContractError("trace_path did not reach ret in '" + prog.name + "'");
}

}  // namespace ispb::analysis

#include "ir/analysis/divergence.hpp"

namespace ispb::analysis {

std::string_view to_string(BranchUniformity u) {
  switch (u) {
    case BranchUniformity::kScenarioConstant:
      return "scenario-constant";
    case BranchUniformity::kBlockUniform:
      return "block-uniform";
    case BranchUniformity::kLaneDependent:
      return "lane-dependent";
    case BranchUniformity::kUndecidable:
      return "undecidable";
  }
  return "?";
}

namespace {

/// True when some comparison leaf of the predicate depends on the thread
/// index within the block.
bool depends_on_tid(const PredExpr& p) {
  switch (p.kind) {
    case PredExpr::Kind::kConst:
      return false;
    case PredExpr::Kind::kCmp:
      return p.form.c_tidx != 0 || p.form.c_tidy != 0;
    case PredExpr::Kind::kAnd:
    case PredExpr::Kind::kOr:
    case PredExpr::Kind::kXor:
      return depends_on_tid(p.kids[0]) || depends_on_tid(p.kids[1]);
  }
  return true;
}

}  // namespace

std::vector<BranchInfo> classify_branches(const ir::Program& prog,
                                          const AffineExtraction& extraction,
                                          const RangeResult& ranges) {
  std::vector<BranchInfo> out;
  for (u32 pc = 0; pc < prog.code.size(); ++pc) {
    const ir::Instr& ins = prog.code[pc];
    if (!ins.is_conditional_branch() || !ranges.reached[pc]) continue;
    BranchInfo info;
    info.pc = pc;
    const Interval bp = ranges.branch_pred[pc];
    if (!bp.is_empty() && bp.is_point()) {
      info.uniformity = BranchUniformity::kScenarioConstant;
      info.detail = bp.lo == 0 ? "never taken" : "always taken";
    } else {
      const AbstractValue& pv = extraction.regs[ins.c.reg];
      if (pv.kind == AbstractValue::Kind::kPred) {
        const bool lane = depends_on_tid(pv.pred);
        info.uniformity = lane ? BranchUniformity::kLaneDependent
                               : BranchUniformity::kBlockUniform;
        info.detail = lane ? "predicate depends on tid" : "tid-independent";
      } else {
        info.uniformity = BranchUniformity::kUndecidable;
        info.detail = pv.reason.empty() ? "predicate outside the fragment"
                                        : pv.reason;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

DivergenceResult analyze_divergence(const ir::Program& prog,
                                    const LaunchGeometry& geom) {
  DivergenceResult result;
  bool degenerate = false;
  const std::vector<Scenario> scenarios =
      enumerate_scenarios(prog, geom, degenerate);
  if (degenerate) {
    result.report.findings.push_back(
        Finding{FindingKind::kDegenerateGeometry, kNoPc,
                "block bounds are degenerate for this geometry; the runtime "
                "launches the naive kernel instead"});
    return result;
  }
  for (const Scenario& s : scenarios) {
    const Facts facts = make_launch_facts(prog, geom, s.bx, s.by, s.tx, s.ty);
    const RangeResult ranges = analyze_ranges(prog, facts);
    const AffineExtraction extraction = extract_affine(prog, facts);

    ScenarioDivergence sd;
    sd.label = s.label;
    sd.region = s.region;
    sd.routed = s.routed;
    sd.branches = classify_branches(prog, extraction, ranges);
    ++result.report.scenarios;

    if (s.routed && s.region == Region::kBody) {
      for (const BranchInfo& b : sd.branches) {
        if (is_uniform(b.uniformity)) continue;
        result.report.findings.push_back(Finding{
            FindingKind::kDivergentBranch, b.pc,
            "scenario " + s.label + ": Body-routed branch at pc " +
                std::to_string(b.pc) + " is " +
                std::string(to_string(b.uniformity)) + " (" + b.detail + ")"});
      }
    }
    result.scenarios.push_back(std::move(sd));
  }
  return result;
}

}  // namespace ispb::analysis
